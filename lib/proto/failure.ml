open Tr_sim
module ISet = Set.Make (Int)

type msg =
  | Token of { gen : int; stamp : int }
  | Ack of { gen : int; stamp : int }
  | WhoHas of { initiator : int }
  | Status of { stamp : int; gen : int }
  | Regenerate of { gen : int }

type state = {
  gen : int;  (** Highest token generation witnessed. *)
  last_stamp : int;
  last_seen : float;  (** When the token last visited us. *)
  dead : ISet.t;  (** Locally suspected-dead successors. *)
  awaiting_ack : (int * int * int) option;  (** (gen, stamp, dst). *)
  held : (int * int) option;  (** (gen, stamp) while holding the token. *)
  recovering : bool;
  best_status : (int * int * int) option;  (** (gen, stamp, node). *)
}

let generation state = state.gen

let timer_ack = 1
let timer_watch = 2
let timer_collect = 3
let timer_pass = 4

let ack_wait = 3.0
let collect_window = 3.0

let classify = function
  | Token _ -> Metrics.Token_msg
  | Ack _ | WhoHas _ | Status _ | Regenerate _ -> Metrics.Control_msg

let label = function
  | Token { gen; stamp } -> Printf.sprintf "token(g%d,#%d)" gen stamp
  | Ack { gen; stamp } -> Printf.sprintf "ack(g%d,#%d)" gen stamp
  | WhoHas { initiator } -> Printf.sprintf "whohas(from=%d)" initiator
  | Status { stamp; gen } -> Printf.sprintf "status(g%d,#%d)" gen stamp
  | Regenerate { gen } -> Printf.sprintf "regenerate(g%d)" gen

let make ?timeout () :
    (module Node_intf.PROTOCOL with type state = state and type msg = msg) =
  (module struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "ring-failsafe"

    let describe =
      "ring rotation with fail-stop tolerance (§5): acknowledged hops \
       skip dead successors; a timed-out requester locates the last \
       witness and regenerates the token with a higher generation"

    let classify = classify
    let label = label

    let watch_timeout (ctx : msg Node_intf.ctx) =
      match timeout with Some t -> t | None -> 3.0 *. float_of_int ctx.n

    (* How long a holder keeps the token before passing it on. A non-zero
       hold is what makes holder crashes actually lose the token — with
       atomic receive-and-forward the acknowledged hops alone would make
       loss impossible and §5's recovery path dead code. *)
    let hold_time = 0.5

    let next_alive (ctx : msg Node_intf.ctx) state =
      let rec scan candidate remaining =
        if remaining = 0 then ctx.self
        else if candidate = ctx.self then ctx.self
        else if ISet.mem candidate state.dead then
          scan (Node_intf.succ_node ~n:ctx.n candidate) (remaining - 1)
        else candidate
      in
      scan (Node_intf.succ_node ~n:ctx.n ctx.self) ctx.n

    let send_token (ctx : msg Node_intf.ctx) state ~gen ~stamp =
      let dst = next_alive ctx state in
      if dst = ctx.self then
        (* Everyone else looks dead: keep the token parked here. *)
        { state with held = Some (gen, stamp); awaiting_ack = None }
      else begin
        ctx.send ~dst (Token { gen; stamp });
        ctx.set_timer ~delay:ack_wait ~key:timer_ack;
        { state with awaiting_ack = Some (gen, stamp, dst); held = None }
      end

    let init (ctx : msg Node_intf.ctx) =
      let state =
        {
          gen = 1;
          last_stamp = 0;
          last_seen = 0.0;
          dead = ISet.empty;
          awaiting_ack = None;
          held = None;
          recovering = false;
          best_status = None;
        }
      in
      if ctx.self = 0 then begin
        ctx.possession ();
        send_token ctx state ~gen:1 ~stamp:1
      end
      else state

    let on_request (ctx : msg Node_intf.ctx) state =
      (match state.held with
      | Some _ -> Proto_util.serve_all ctx
      | None ->
          (* Watch for token loss while we wait. *)
          ctx.set_timer ~delay:(watch_timeout ctx) ~key:timer_watch);
      state

    let on_message (ctx : msg Node_intf.ctx) state ~src msg =
      match msg with
      | Token { gen; stamp } ->
          if gen < state.gen then state (* stale generation: discard *)
          else begin
            ctx.send ~channel:Network.Cheap ~dst:src (Ack { gen; stamp });
            ctx.possession ();
            Proto_util.serve_all ctx;
            ctx.set_timer ~delay:hold_time ~key:timer_pass;
            {
              state with
              gen;
              last_stamp = stamp;
              last_seen = ctx.now ();
              held = Some (gen, stamp);
              recovering = false;
            }
          end
      | Ack { gen; stamp } -> (
          match state.awaiting_ack with
          | Some (g, s, _) when g = gen && s = stamp ->
              ctx.cancel_timers ~key:timer_ack;
              { state with awaiting_ack = None }
          | Some _ | None -> state)
      | WhoHas { initiator } ->
          ctx.send ~channel:Network.Cheap ~dst:initiator
            (Status { stamp = state.last_stamp; gen = state.gen });
          state
      | Status { stamp; gen } ->
          if not state.recovering then state
          else begin
            let better =
              match state.best_status with
              | None -> true
              | Some (bg, bs, _) -> gen > bg || (gen = bg && stamp > bs)
            in
            if better then { state with best_status = Some (gen, stamp, src) }
            else state
          end
      | Regenerate { gen } ->
          if gen <= state.gen then state (* someone already regenerated *)
          else begin
            ctx.possession ();
            ctx.note (fun () -> Printf.sprintf "regenerating token g%d" gen);
            Proto_util.serve_all ctx;
            send_token ctx
              { state with gen; recovering = false }
              ~gen ~stamp:(state.last_stamp + 1)
          end

    let on_timer (ctx : msg Node_intf.ctx) state ~key =
      if key = timer_pass then
        match state.held with
        | Some (gen, stamp) ->
            Proto_util.serve_all ctx;
            send_token ctx state ~gen ~stamp:(stamp + 1)
        | None -> state
      else if key = timer_ack then
        match state.awaiting_ack with
        | Some (gen, stamp, dst) ->
            (* No Ack: the successor is dead; skip it and re-send. *)
            ctx.note (fun () -> Printf.sprintf "suspecting node %d" dst);
            send_token ctx
              { state with dead = ISet.add dst state.dead; awaiting_ack = None }
              ~gen ~stamp
        | None -> state
      else if key = timer_watch then begin
        if
          ctx.pending () > 0
          && (not state.recovering)
          && state.held = None
          && ctx.now () -. state.last_seen >= watch_timeout ctx
        then begin
          (* Token presumed lost: poll every node for its last sighting. *)
          ctx.note (fun () -> "token loss suspected; broadcasting WhoHas");
          for dst = 0 to ctx.n - 1 do
            if dst <> ctx.self then
              ctx.send ~channel:Network.Cheap ~dst
                (WhoHas { initiator = ctx.self })
          done;
          ctx.set_timer ~delay:collect_window ~key:timer_collect;
          {
            state with
            recovering = true;
            best_status = Some (state.gen, state.last_stamp, ctx.self);
          }
        end
        else state
      end
      else if key = timer_collect then begin
        if not state.recovering then state
        else if ctx.pending () = 0 then { state with recovering = false }
        else begin
          match state.best_status with
          | None -> { state with recovering = false }
          | Some (gen, stamp, witness) ->
              let new_gen = gen + 1 in
              (* Re-arm the watch in case this recovery also fails. *)
              ctx.set_timer ~delay:(watch_timeout ctx) ~key:timer_watch;
              if witness = ctx.self then begin
                ctx.possession ();
                ctx.note (fun () ->
                    Printf.sprintf "regenerating token g%d locally" new_gen);
                Proto_util.serve_all ctx;
                send_token ctx
                  { state with gen = new_gen; recovering = false;
                    best_status = None }
                  ~gen:new_gen ~stamp:(stamp + 1)
              end
              else begin
                ctx.send ~dst:witness (Regenerate { gen = new_gen });
                { state with recovering = false; best_status = None }
              end
        end
      end
      else state
  end)

let protocol : (module Node_intf.PROTOCOL) = (module (val make ()))
