(** Raymond-style tree token algorithm — the fixed-topology comparator.

    The paper contrasts its ring+search scheme with "fixed tree-based
    topologies where fast access comes at the cost of high loads at the
    roots" (§5) and cites the tree-based mutual-exclusion family in §1.1.
    This module implements the classic Raymond algorithm on a static
    balanced binary tree (node [i]'s parent is [(i-1)/2]): each node keeps
    a pointer toward the token and a FIFO of pending directions; requests
    travel up the path toward the holder, the token travels back down.

    Messages per critical section are O(log N) — like BinarySearch — but
    possessions concentrate on the tree's interior (every token transfer
    walks through it), which {!Tr_sim.Metrics.possession_imbalance}
    exposes; the ring-based protocols spread possessions evenly. *)

open Tr_sim

type msg =
  | Token  (** The privilege, moving one tree edge. *)
  | Request  (** "Send the token toward me", moving one tree edge. *)

type state

val protocol : (module Node_intf.PROTOCOL)

val protocol_t :
  (module Node_intf.PROTOCOL with type state = state and type msg = msg)
(** Typed handle (codec-derivation hook): lets the wire layer pair the
    protocol with its message codec without losing the [msg] equality. *)


val holder_direction : state -> int option
(** [None] if this node holds the token, [Some neighbour] otherwise. *)

val queue : state -> int list
(** Pending directions ([-1] encodes "self"), for tests. *)
