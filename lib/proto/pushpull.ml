open Tr_sim

type msg =
  | Token of { stamp : int }
  | Loan of { stamp : int }
  | Return of { stamp : int }
  | Gimme of { requester : int; span : int; stamp : int }
  | Probe of { holder : int; ttl : int }
  | Want of { requester : int }

type holding = Not_holding | Parked of { stamp : int } | Lent of { stamp : int }

type state = {
  last_stamp : int;
  holding : holding;
  traps : Proto_util.Traps.t;
}

let is_parked state =
  match state.holding with Parked _ -> true | Not_holding | Lent _ -> false

let timer_probe = 1

let classify = function
  | Token _ | Loan _ | Return _ -> Metrics.Token_msg
  | Gimme _ | Probe _ | Want _ -> Metrics.Control_msg

let label = function
  | Token { stamp } -> Printf.sprintf "token#%d" stamp
  | Loan { stamp } -> Printf.sprintf "loan#%d" stamp
  | Return { stamp } -> Printf.sprintf "return#%d" stamp
  | Gimme { requester; span; stamp } ->
      Printf.sprintf "gimme(req=%d span=%d stamp=%d)" requester span stamp
  | Probe { holder; ttl } -> Printf.sprintf "probe(holder=%d ttl=%d)" holder ttl
  | Want { requester } -> Printf.sprintf "want(req=%d)" requester

let make ?(probe_interval = 4.0) () :
    (module Node_intf.PROTOCOL with type state = state and type msg = msg) =
  (module struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "pushpull"

    let describe =
      Printf.sprintf
        "push-pull dual: token parks when idle; parked holder probes for \
         requesters every %g time units (push) while requesters \
         binary-search for the token (pull)"
        probe_interval

    let classify = classify
    let label = label

    (* Lend to the oldest trap, or park here and start probing. *)
    let rec dispatch (ctx : msg Node_intf.ctx) state ~stamp =
      match Proto_util.Traps.pop state.traps with
      | Some (requester, traps) ->
          if requester = ctx.self then dispatch ctx { state with traps } ~stamp
          else begin
            ctx.send ~dst:requester (Loan { stamp });
            { state with holding = Lent { stamp }; traps }
          end
      | None ->
          ctx.set_timer ~delay:probe_interval ~key:timer_probe;
          { state with holding = Parked { stamp }; last_stamp = stamp }

    let init (ctx : msg Node_intf.ctx) =
      let state =
        { last_stamp = 0; holding = Not_holding; traps = Proto_util.Traps.empty }
      in
      if ctx.self = 0 then begin
        ctx.possession ();
        (* The initial holder parks immediately — no demand yet. *)
        dispatch ctx state ~stamp:0
      end
      else state

    let on_request (ctx : msg Node_intf.ctx) state =
      match state.holding with
      | Parked { stamp } ->
          Proto_util.serve_all ctx;
          dispatch ctx { state with holding = Not_holding } ~stamp
      | Lent _ -> state (* token is out on loan; it comes back here *)
      | Not_holding ->
          let span = ctx.n / 2 in
          if span < 1 then state
          else begin
            let dst = Node_intf.forward_node ~n:ctx.n ctx.self span in
            ctx.send ~channel:Network.Cheap ~dst
              (Gimme { requester = ctx.self; span; stamp = state.last_stamp });
            state
          end

    let on_message (ctx : msg Node_intf.ctx) state ~src msg =
      match msg with
      | Token { stamp } ->
          ctx.possession ();
          Proto_util.serve_all ctx;
          dispatch ctx { state with last_stamp = stamp } ~stamp
      | Loan { stamp } ->
          ctx.possession ();
          Proto_util.serve_all ctx;
          ctx.send ~dst:src (Return { stamp });
          state
      | Return { stamp } ->
          ctx.possession ();
          Proto_util.serve_all ctx;
          dispatch ctx { state with holding = Not_holding } ~stamp
      | Gimme { requester; span; stamp } ->
          if requester = ctx.self then state
          else begin
            ctx.search_forward ();
            let state =
              { state with traps = Proto_util.Traps.push state.traps requester }
            in
            match state.holding with
            | Parked { stamp = held_stamp } ->
                (* Pull hit the parked holder: serve at once. *)
                ctx.cancel_timers ~key:timer_probe;
                dispatch ctx { state with holding = Not_holding } ~stamp:held_stamp
            | Lent _ -> state
            | Not_holding ->
                if span >= 2 then begin
                  let jump = span / 2 in
                  let dir = if state.last_stamp >= stamp then jump else -jump in
                  let dst = Node_intf.forward_node ~n:ctx.n ctx.self dir in
                  ctx.send ~channel:Network.Cheap ~dst
                    (Gimme { requester; span = jump; stamp })
                end;
                state
          end
      | Probe { holder; ttl } ->
          if ctx.pending () > 0 then begin
            (* The push wave found us: claim the token, stop the wave. *)
            ctx.send ~channel:Network.Cheap ~dst:holder
              (Want { requester = ctx.self });
            state
          end
          else begin
            if ttl > 1 then
              ctx.send ~channel:Network.Cheap
                ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
                (Probe { holder; ttl = ttl - 1 });
            state
          end
      | Want { requester } -> (
          match state.holding with
          | Parked { stamp } ->
              ctx.cancel_timers ~key:timer_probe;
              let state =
                { state with traps = Proto_util.Traps.push state.traps requester }
              in
              dispatch ctx { state with holding = Not_holding } ~stamp
          | Lent _ | Not_holding ->
              (* Token already moved on; remember the interest. *)
              { state with traps = Proto_util.Traps.push state.traps requester })

    let on_timer (ctx : msg Node_intf.ctx) state ~key =
      if key <> timer_probe then state
      else
        match state.holding with
        | Parked { stamp } ->
            if Proto_util.Traps.is_empty state.traps && ctx.pending () = 0 then begin
              (* Still idle: launch a push wave and re-arm. *)
              ctx.send ~channel:Network.Cheap
                ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
                (Probe { holder = ctx.self; ttl = ctx.n - 1 });
              ctx.set_timer ~delay:probe_interval ~key:timer_probe;
              state
            end
            else begin
              Proto_util.serve_all ctx;
              dispatch ctx { state with holding = Not_holding } ~stamp
            end
        | Not_holding | Lent _ -> state
  end)

let protocol : (module Node_intf.PROTOCOL) = (module (val make ()))
