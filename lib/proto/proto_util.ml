open Tr_sim
module ISet = Set.Make (Int)

let serve_all (ctx : 'msg Node_intf.ctx) =
  while ctx.pending () > 0 do
    ctx.serve ()
  done

module Traps = struct
  type t = { fifo : int list; members : ISet.t }

  let empty = { fifo = []; members = ISet.empty }
  let is_empty t = t.fifo = []
  let mem t requester = ISet.mem requester t.members

  let push t requester =
    if mem t requester then t
    else { fifo = t.fifo @ [ requester ]; members = ISet.add requester t.members }

  let pop t =
    match t.fifo with
    | [] -> None
    | requester :: rest ->
        Some (requester, { fifo = rest; members = ISet.remove requester t.members })

  let to_list t = t.fifo
  let size t = List.length t.fifo
end
