(** Fail-safe BinarySearch — §5's observation made executable:
    "by combining token traversal with searching, the protocol already
    has a way of handling failures. If a node x with the token fails,
    then nothing will happen until some other node y needs the token, at
    which point it will quickly discover that the token holder has
    failed."

    The full BinarySearch machinery (rotation + gimme searches + traps +
    loans) hardened against fail-stop crashes:

    - rotation hops are acknowledged; a missing [Ack] marks the successor
      dead and re-sends past it, so non-holder crashes never lose the
      token;
    - holders keep the token for a short hold window (as in
      {!Failure}), so a holder crash genuinely loses it;
    - a lender whose loan never comes back concludes the borrower died
      mid-service and reissues the token locally (it knows the token
      cannot be anywhere else);
    - a {e requester} whose search goes unanswered for the watch timeout
      — exactly the paper's trigger — polls the survivors ([WhoHas]),
      picks the best witness, and has it regenerate a higher-generation
      token; stale tokens are discarded on arrival.

    Crashes of search-path nodes need no machinery at all: a lost gimme
    only loses a hint, and the rotating token still serves the request —
    the two-tier message discipline paying off once more. *)

open Tr_sim

type msg =
  | Token of { gen : int; stamp : int }
  | Ack of { gen : int; stamp : int }
  | Loan of { gen : int; stamp : int }
  | Return of { gen : int; stamp : int }
  | Gimme of { requester : int; span : int; stamp : int }
  | WhoHas of { initiator : int }
  | Status of { gen : int; stamp : int }
  | Regenerate of { gen : int }

type state

val make :
  ?timeout:float ->
  unit ->
  (module Node_intf.PROTOCOL with type state = state and type msg = msg)
(** [timeout] is the requester's token-loss watch (default [3n]). *)

val protocol : (module Node_intf.PROTOCOL)

val generation : state -> int
