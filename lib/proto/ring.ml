open Tr_sim

type msg = Token of { stamp : int }
type state = { last_stamp : int }

let name = "ring"

let describe =
  "regular ring rotation (Message-Passing rule 3'): token circulates \
   continuously, holder serves all local requests then passes on"

let classify (Token _) = Metrics.Token_msg
let label (Token { stamp }) = Printf.sprintf "token#%d" stamp

let init (ctx : msg Node_intf.ctx) =
  if ctx.self = 0 then begin
    (* Node 0 is the initial holder; it starts the perpetual rotation. *)
    ctx.possession ();
    ctx.send ~dst:(Node_intf.succ_node ~n:ctx.n 0) (Token { stamp = 1 })
  end;
  { last_stamp = 0 }

let serve_all (ctx : msg Node_intf.ctx) =
  while ctx.pending () > 0 do
    ctx.serve ()
  done

let on_message (ctx : msg Node_intf.ctx) _state ~src:_ (Token { stamp }) =
  ctx.possession ();
  serve_all ctx;
  ctx.send ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self) (Token { stamp = stamp + 1 });
  { last_stamp = stamp }

let on_timer _ctx state ~key:_ = state

(* Rotation alone finds every request; a ready node does nothing active. *)
let on_request _ctx state = state

let protocol : (module Node_intf.PROTOCOL) =
  (module struct
    type nonrec state = state
    type nonrec msg = msg

    let name = name
    let describe = describe
    let classify = classify
    let label = label
    let init = init
    let on_message = on_message
    let on_timer = on_timer
    let on_request = on_request
  end)
