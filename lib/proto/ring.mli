(** The regular ring-rotation protocol — the paper's baseline.

    System Message-Passing with rule 3′ (Figure 5): the token circulates
    node to node, one hop per time unit, forever; a node that holds the
    token serves all of its outstanding requests before passing it on.
    Responsiveness is O(N) (Lemma 4): a lone request waits for the token
    to come around, N/2 hops on average; under the paper's fixed load it
    converges to the mean request interarrival (Figure 9's upper curve). *)

open Tr_sim

type msg = Token of { stamp : int }
(** [stamp] counts rotation hops; it implements the bounded round counter
    of §4.4 and lets observers reconstruct circulation order. *)

include Node_intf.PROTOCOL with type msg := msg

val protocol : (module Node_intf.PROTOCOL)
(** First-class handle for {!Tr_sim.Engine.Make}-based runners. *)
