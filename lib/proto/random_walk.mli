(** Self-stabilizing random-walk token circulation — the chaos suite's
    comparator (Bernard, Bui & Sohier, arXiv:1109.3561).

    The token performs a uniform random walk: each holder serves its
    outstanding requests, then forwards to a uniformly random other
    node, so a lone request waits the walk's hitting time (~N hops in
    expectation on the complete graph) instead of the ring's fixed
    rotation. What it buys is self-stabilization: tokens carry a
    [(generation, serial)] stamp, every node records the highest stamp
    it forwarded, and an arriving token that does not strictly dominate
    the record is destroyed — which kills network duplicates (they
    revisit the node that already advanced the serial) and walks from
    superseded generations. A staggered no-visit timeout regenerates a
    lost token under a fresh generation, so the protocol re-establishes
    a single circulating token after loss, duplication or partition
    without any global coordination. *)

open Tr_sim

type msg = Token of { gen : int; serial : int }
(** [gen] increments on regeneration; [serial] on every hop. Strict
    lexicographic dominance decides survival. *)

include Node_intf.PROTOCOL with type msg := msg

val protocol : (module Node_intf.PROTOCOL)
(** First-class handle for {!Tr_sim.Engine.Make}-based runners. *)
