(** Directed search (§4.4).

    Unlike the delegated search of {!Binsearch}, search messages do not
    migrate through the ring: each probed node answers the requester
    directly (with its last-visit stamp, i.e. its history projected onto
    circulation events), and the requester itself decides where to probe
    next. This doubles the worst-case search messages to 2·log N, but the
    requester can stop the search the moment the token reaches it through
    its normal rotation — the saving the paper points out. Probed nodes
    still lay traps, so the rotating token is intercepted as usual. *)

open Tr_sim

type msg =
  | Token of { stamp : int }
  | Loan of { stamp : int }
  | Return of { stamp : int }
  | Probe of { requester : int }
  | Reply of { stamp : int }
      (** The probed node's last-visit stamp, returned to the requester. *)

type state

val protocol : (module Node_intf.PROTOCOL)

val protocol_t :
  (module Node_intf.PROTOCOL with type state = state and type msg = msg)
(** Typed handle (codec-derivation hook): lets the wire layer pair the
    protocol with its message codec without losing the [msg] equality. *)


val active_search : state -> (int * int) option
(** [(position, span)] of the requester's running probe, for tests. *)
