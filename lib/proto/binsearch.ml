open Tr_sim

type msg =
  | Token of { stamp : int }
  | Loan of { stamp : int }
  | Return of { stamp : int }
  | Gimme of { requester : int; span : int; stamp : int }

type holding = Not_holding | Lent of { stamp : int }

type state = {
  last_stamp : int;  (** Hop count when the rotation last visited us. *)
  holding : holding;
  traps : Proto_util.Traps.t;  (** Trapped requesters, FIFO. *)
  searching : bool;  (** Own gimme in flight (used when throttling). *)
}

let trap_queue state = Proto_util.Traps.to_list state.traps
let last_stamp state = state.last_stamp
let is_searching state = state.searching

let classify = function
  | Token _ | Loan _ | Return _ -> Metrics.Token_msg
  | Gimme _ -> Metrics.Control_msg

let label = function
  | Token { stamp } -> Printf.sprintf "token#%d" stamp
  | Loan { stamp } -> Printf.sprintf "loan#%d" stamp
  | Return { stamp } -> Printf.sprintf "return#%d" stamp
  | Gimme { requester; span; stamp } ->
      Printf.sprintf "gimme(req=%d span=%d stamp=%d)" requester span stamp

let serve_all = Proto_util.serve_all

let push_trap state requester =
  { state with traps = Proto_util.Traps.push state.traps requester }

let pop_trap state =
  match Proto_util.Traps.pop state.traps with
  | None -> (None, state)
  | Some (requester, traps) -> (Some requester, { state with traps })

(* The holder decides what to do with the token: lend it to the oldest
   trapped requester (FIFO, as Theorem 2 requires), or resume rotation.
   Traps for ourselves are satisfied on the spot by [serve_all] earlier,
   so they are skipped here. *)
let rec dispatch (ctx : msg Node_intf.ctx) state ~stamp =
  match pop_trap state with
  | Some requester, state' ->
      if requester = ctx.self then dispatch ctx state' ~stamp
      else begin
        ctx.send ~dst:requester (Loan { stamp });
        { state' with holding = Lent { stamp } }
      end
  | None, state' ->
      ctx.send
        ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
        (Token { stamp = stamp + 1 });
      { state' with holding = Not_holding }

let launch_search (ctx : msg Node_intf.ctx) state =
  let span = ctx.n / 2 in
  if span < 1 then state
  else begin
    let dst = Node_intf.forward_node ~n:ctx.n ctx.self span in
    ctx.send ~channel:Network.Cheap ~dst
      (Gimme { requester = ctx.self; span; stamp = state.last_stamp });
    { state with searching = true }
  end

let make ?(throttle = false) ?name:(proto_name = if throttle then "binsearch-throttle" else "binsearch")
    () : (module Node_intf.PROTOCOL with type state = state and type msg = msg) =
  (module struct
    type nonrec state = state
    type nonrec msg = msg

    let name = proto_name

    let describe =
      if throttle then
        "System BinarySearch with single-outstanding-request throttling \
         (§4.4): at most one gimme in flight per node"
      else
        "System BinarySearch: ring rotation + binary token search with \
         traps; O(log N) responsiveness"

    let classify = classify
    let label = label

    let init (ctx : msg Node_intf.ctx) =
      if ctx.self = 0 then begin
        ctx.possession ();
        ctx.send ~dst:(Node_intf.succ_node ~n:ctx.n 0) (Token { stamp = 1 })
      end;
      {
        last_stamp = 0;
        holding = Not_holding;
        traps = Proto_util.Traps.empty;
        searching = false;
      }

    let on_request (ctx : msg Node_intf.ctx) state =
      if throttle && state.searching then state else launch_search ctx state

    let on_message (ctx : msg Node_intf.ctx) state ~src msg =
      match msg with
      | Token { stamp } ->
          ctx.possession ();
          serve_all ctx;
          let state = { state with last_stamp = stamp; searching = false } in
          dispatch ctx state ~stamp
      | Loan { stamp } ->
          (* Borrowed token: use it and return it immediately (rule 8). *)
          ctx.possession ();
          serve_all ctx;
          ctx.send ~dst:src (Return { stamp });
          { state with searching = false }
      | Return { stamp } ->
          (* Our loan came back; serve whatever arrived meanwhile, then
             the next trap or the rotation resumes from here (rule 7's
             "continues to flow from where it was first intercepted"). *)
          ctx.possession ();
          serve_all ctx;
          dispatch ctx { state with holding = Not_holding } ~stamp
      | Gimme { requester; span; stamp } ->
          if requester = ctx.self then state (* our own search came home *)
          else begin
            ctx.search_forward ();
            let state = push_trap state requester in
            match state.holding with
            | Lent _ -> state (* token already on loan; trap waits *)
            | Not_holding ->
                if span >= 2 then begin
                  let jump = span / 2 in
                  (* ⊂_C as a stamp comparison: if the token visited us
                     after visiting the requester, it is ahead — chase
                     clockwise; otherwise it lags behind — search
                     counter-clockwise. *)
                  let dir = if state.last_stamp >= stamp then jump else -jump in
                  let dst = Node_intf.forward_node ~n:ctx.n ctx.self dir in
                  ctx.send ~channel:Network.Cheap ~dst
                    (Gimme { requester; span = jump; stamp })
                end;
                state
          end

    let on_timer _ctx state ~key:_ = state
  end)

let protocol : (module Node_intf.PROTOCOL) = (module (val make ()))

let protocol_throttled : (module Node_intf.PROTOCOL) =
  (module (val make ~throttle:true ()))
