open Tr_sim

type msg =
  | Token of { stamp : int }
  | Loan of { stamp : int }
  | Return of { stamp : int }
  | Probe of { requester : int }
  | Reply of { stamp : int }

type holding = Not_holding | Lent

type search = { position : int; span : int }

type state = {
  last_stamp : int;
  holding : holding;
  traps : Proto_util.Traps.t;
  search : search option;
}

let active_search state =
  Option.map (fun { position; span } -> (position, span)) state.search

let classify = function
  | Token _ | Loan _ | Return _ -> Metrics.Token_msg
  | Probe _ | Reply _ -> Metrics.Control_msg

let label = function
  | Token { stamp } -> Printf.sprintf "token#%d" stamp
  | Loan { stamp } -> Printf.sprintf "loan#%d" stamp
  | Return { stamp } -> Printf.sprintf "return#%d" stamp
  | Probe { requester } -> Printf.sprintf "probe(req=%d)" requester
  | Reply { stamp } -> Printf.sprintf "reply(stamp=%d)" stamp

let rec dispatch (ctx : msg Node_intf.ctx) state ~stamp =
  match Proto_util.Traps.pop state.traps with
  | Some (requester, traps) ->
      if requester = ctx.self then dispatch ctx { state with traps } ~stamp
      else begin
        ctx.send ~dst:requester (Loan { stamp });
        { state with holding = Lent; traps }
      end
  | None ->
      ctx.send
        ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
        (Token { stamp = stamp + 1 });
      { state with holding = Not_holding }

let probe (ctx : msg Node_intf.ctx) position =
  ctx.send ~channel:Network.Cheap ~dst:position (Probe { requester = ctx.self })

(* Named (rather than inline) so [protocol_t] below can expose the typed
   module the wire-codec layer pairs with its codec. *)
module P = struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "directed"

    let describe =
      "directed search (§4.4): probes return to the requester, which \
       steers the binary search itself; 2·log N search messages, search \
       stops early when the token arrives by rotation"

    let classify = classify
    let label = label

    let init (ctx : msg Node_intf.ctx) =
      if ctx.self = 0 then begin
        ctx.possession ();
        ctx.send ~dst:(Node_intf.succ_node ~n:ctx.n 0) (Token { stamp = 1 })
      end;
      {
        last_stamp = 0;
        holding = Not_holding;
        traps = Proto_util.Traps.empty;
        search = None;
      }

    let on_request (ctx : msg Node_intf.ctx) state =
      match state.search with
      | Some _ -> state (* one directed search at a time *)
      | None ->
          let span = ctx.n / 2 in
          if span < 1 then state
          else begin
            let position = Node_intf.forward_node ~n:ctx.n ctx.self span in
            probe ctx position;
            { state with search = Some { position; span } }
          end

    let on_message (ctx : msg Node_intf.ctx) state ~src msg =
      match msg with
      | Token { stamp } ->
          ctx.possession ();
          Proto_util.serve_all ctx;
          (* The rotation reached us: any running search is now moot. *)
          let state = { state with last_stamp = stamp; search = None } in
          dispatch ctx state ~stamp
      | Loan { stamp } ->
          ctx.possession ();
          Proto_util.serve_all ctx;
          ctx.send ~dst:src (Return { stamp });
          { state with search = None }
      | Return { stamp } ->
          ctx.possession ();
          Proto_util.serve_all ctx;
          dispatch ctx { state with holding = Not_holding } ~stamp
      | Probe { requester } ->
          ctx.search_forward ();
          let state =
            { state with traps = Proto_util.Traps.push state.traps requester }
          in
          ctx.send ~channel:Network.Cheap ~dst:requester
            (Reply { stamp = state.last_stamp });
          state
      | Reply { stamp = probed_stamp } -> (
          match state.search with
          | None -> state (* search already satisfied or abandoned *)
          | Some { position; span } ->
              if ctx.pending () = 0 then { state with search = None }
              else begin
                let next_span = span / 2 in
                if next_span < 1 then { state with search = None }
                else begin
                  (* Same ⊂_C decision as the delegated search, but taken
                     at the requester from the returned stamp. *)
                  let dir =
                    if probed_stamp >= state.last_stamp then next_span
                    else -next_span
                  in
                  let next = Node_intf.forward_node ~n:ctx.n position dir in
                  probe ctx next;
                  { state with search = Some { position = next; span = next_span } }
                end
              end)

    let on_timer _ctx state ~key:_ = state
end

let protocol_t :
    (module Node_intf.PROTOCOL with type state = state and type msg = msg) =
  (module P)

let protocol : (module Node_intf.PROTOCOL) = (module P)
