open Tr_sim

type rotation_msg =
  | RToken of { stamp : int; satisfied : int array }
  | RLoan of { stamp : int; satisfied : int array }
  | RReturn of { stamp : int; satisfied : int array }
  | RGimme of { requester : int; seq : int; span : int; stamp : int }

type inverse_msg =
  | IToken of { stamp : int }
  | ILoanVia of { stamp : int; requester : int; trail : int list }
  | IReturn of { stamp : int }
  | IGimme of { requester : int; span : int; stamp : int; trail : int list }

(* ------------------------------------------------------------------ *)
(* Token-rotation cleanup                                              *)
(* ------------------------------------------------------------------ *)

module Rotation = struct
  type holding = Not_holding | Lent

  type state = {
    last_stamp : int;
    holding : holding;
    traps : (int * int) list;  (** (requester, seq), FIFO. *)
    req_seq : int;  (** This node's own request sequence counter. *)
  }

  let name = "binsearch-gc-rotation"

  let describe =
    "BinarySearch + token-rotation trap cleanup (§4.4): the token carries \
     a satisfied-request vector and holders drop obsolete traps as it \
     rotates"

  let classify = function
    | RToken _ | RLoan _ | RReturn _ -> Metrics.Token_msg
    | RGimme _ -> Metrics.Control_msg

  let label = function
    | RToken { stamp; _ } -> Printf.sprintf "token#%d" stamp
    | RLoan { stamp; _ } -> Printf.sprintf "loan#%d" stamp
    | RReturn { stamp; _ } -> Printf.sprintf "return#%d" stamp
    | RGimme { requester; seq; span; _ } ->
        Printf.sprintf "gimme(req=%d.%d span=%d)" requester seq span

  (* Keep one trap per requester, at its original queue position, with
     the highest sequence number seen. *)
  let push_trap traps requester seq =
    if List.mem_assoc requester traps then
      List.map
        (fun (z, s) -> if z = requester then (z, Stdlib.max s seq) else (z, s))
        traps
    else traps @ [ (requester, seq) ]

  let purge traps satisfied =
    List.filter (fun (z, seq) -> satisfied.(z) < seq) traps

  (* The vector learns that this node's requests up to [req_seq] are
     satisfied whenever its pending queue is empty. *)
  let refresh_satisfied (ctx : rotation_msg Node_intf.ctx) state satisfied =
    let satisfied = Array.copy satisfied in
    if ctx.pending () = 0 then
      satisfied.(ctx.self) <- Stdlib.max satisfied.(ctx.self) state.req_seq;
    satisfied

  let rec dispatch (ctx : rotation_msg Node_intf.ctx) state ~stamp ~satisfied =
    match state.traps with
    | (requester, _) :: rest when requester = ctx.self ->
        dispatch ctx { state with traps = rest } ~stamp ~satisfied
    | (requester, _) :: rest ->
        ctx.send ~dst:requester (RLoan { stamp; satisfied });
        { state with holding = Lent; traps = rest }
    | [] ->
        ctx.send
          ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
          (RToken { stamp = stamp + 1; satisfied });
        { state with holding = Not_holding }

  let init (ctx : rotation_msg Node_intf.ctx) =
    if ctx.self = 0 then begin
      ctx.possession ();
      ctx.send
        ~dst:(Node_intf.succ_node ~n:ctx.n 0)
        (RToken { stamp = 1; satisfied = Array.make ctx.n 0 })
    end;
    { last_stamp = 0; holding = Not_holding; traps = []; req_seq = 0 }

  let on_request (ctx : rotation_msg Node_intf.ctx) state =
    let state = { state with req_seq = state.req_seq + 1 } in
    let span = ctx.n / 2 in
    if span < 1 then state
    else begin
      let dst = Node_intf.forward_node ~n:ctx.n ctx.self span in
      ctx.send ~channel:Network.Cheap ~dst
        (RGimme
           { requester = ctx.self; seq = state.req_seq; span;
             stamp = state.last_stamp });
      state
    end

  let on_message (ctx : rotation_msg Node_intf.ctx) state ~src msg =
    match msg with
    | RToken { stamp; satisfied } ->
        ctx.possession ();
        Proto_util.serve_all ctx;
        let satisfied = refresh_satisfied ctx state satisfied in
        let state =
          { state with last_stamp = stamp; traps = purge state.traps satisfied }
        in
        dispatch ctx state ~stamp ~satisfied
    | RLoan { stamp; satisfied } ->
        ctx.possession ();
        Proto_util.serve_all ctx;
        let satisfied = refresh_satisfied ctx state satisfied in
        let state = { state with traps = purge state.traps satisfied } in
        ctx.send ~dst:src (RReturn { stamp; satisfied });
        state
    | RReturn { stamp; satisfied } ->
        ctx.possession ();
        Proto_util.serve_all ctx;
        let satisfied = refresh_satisfied ctx state satisfied in
        let state =
          { state with holding = Not_holding; traps = purge state.traps satisfied }
        in
        dispatch ctx state ~stamp ~satisfied
    | RGimme { requester; seq; span; stamp } ->
        if requester = ctx.self then state
        else begin
          ctx.search_forward ();
          let state =
            { state with traps = push_trap state.traps requester seq }
          in
          (match state.holding with
          | Lent -> ()
          | Not_holding ->
              if span >= 2 then begin
                let jump = span / 2 in
                let dir = if state.last_stamp >= stamp then jump else -jump in
                let dst = Node_intf.forward_node ~n:ctx.n ctx.self dir in
                ctx.send ~channel:Network.Cheap ~dst
                  (RGimme { requester; seq; span = jump; stamp })
              end);
          state
        end

  let on_timer _ctx state ~key:_ = state
end

(* ------------------------------------------------------------------ *)
(* Inverse-token cleanup                                               *)
(* ------------------------------------------------------------------ *)

module Inverse = struct
  type holding = Not_holding | Lent

  type state = {
    last_stamp : int;
    holding : holding;
    traps : (int * int list) list;  (** (requester, trail back to it). *)
  }

  let name = "binsearch-gc-inverse"

  let describe =
    "BinarySearch + inverse-token trap cleanup (§4.4): the loaned token \
     retraces the search trail, erasing the request's traps en route to \
     the requester"

  let classify = function
    | IToken _ | ILoanVia _ | IReturn _ -> Metrics.Token_msg
    | IGimme _ -> Metrics.Control_msg

  let label = function
    | IToken { stamp } -> Printf.sprintf "token#%d" stamp
    | ILoanVia { stamp; requester; trail } ->
        Printf.sprintf "loan-via#%d(req=%d hops=%d)" stamp requester
          (List.length trail)
    | IReturn { stamp } -> Printf.sprintf "return#%d" stamp
    | IGimme { requester; span; trail; _ } ->
        Printf.sprintf "gimme(req=%d span=%d trail=%d)" requester span
          (List.length trail)

  let push_trap traps requester trail =
    if List.mem_assoc requester traps then traps
    else traps @ [ (requester, trail) ]

  let remove_trap traps requester =
    List.filter (fun (z, _) -> z <> requester) traps

  (* The loan hops along [trail] (nearest node first), erasing traps, and
     finally reaches the requester. The requester hands the token back to
     the loan's immediate sender — the last trail node — and rotation
     resumes from there; the paper only requires that the token "continues
     to flow around the ring", not that it returns to the original
     lender. The lender's [Lent] flag is cleared the next time the
     rotation reaches it. *)
  let send_loan (ctx : inverse_msg Node_intf.ctx) ~stamp ~requester ~trail =
    match trail with
    | [] -> ctx.send ~dst:requester (ILoanVia { stamp; requester; trail = [] })
    | hop :: rest ->
        ctx.send ~dst:hop (ILoanVia { stamp; requester; trail = rest })

  let rec dispatch (ctx : inverse_msg Node_intf.ctx) state ~stamp =
    match state.traps with
    | (requester, _) :: rest when requester = ctx.self ->
        dispatch ctx { state with traps = rest } ~stamp
    | (requester, trail) :: rest ->
        send_loan ctx ~stamp ~requester ~trail;
        { state with holding = Lent; traps = rest }
    | [] ->
        ctx.send
          ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
          (IToken { stamp = stamp + 1 });
        { state with holding = Not_holding }

  let init (ctx : inverse_msg Node_intf.ctx) =
    if ctx.self = 0 then begin
      ctx.possession ();
      ctx.send ~dst:(Node_intf.succ_node ~n:ctx.n 0) (IToken { stamp = 1 })
    end;
    { last_stamp = 0; holding = Not_holding; traps = [] }

  let on_request (ctx : inverse_msg Node_intf.ctx) state =
    let span = ctx.n / 2 in
    if span < 1 then state
    else begin
      let dst = Node_intf.forward_node ~n:ctx.n ctx.self span in
      ctx.send ~channel:Network.Cheap ~dst
        (IGimme
           { requester = ctx.self; span; stamp = state.last_stamp; trail = [] });
      state
    end

  let on_message (ctx : inverse_msg Node_intf.ctx) state ~src msg =
    match msg with
    | IToken { stamp } ->
        ctx.possession ();
        Proto_util.serve_all ctx;
        let state = { state with last_stamp = stamp } in
        dispatch ctx state ~stamp
    | ILoanVia { stamp; requester; trail } ->
        if requester = ctx.self then begin
          (* The loan reached us: use it and send it back to the sender,
             which relays it to the lender. *)
          ctx.possession ();
          Proto_util.serve_all ctx;
          ctx.send ~dst:src (IReturn { stamp });
          state
        end
        else begin
          (* Intermediate hop: erase this request's trap and relay the
             loan along the rest of the trail. *)
          let state =
            { state with traps = remove_trap state.traps requester }
          in
          send_loan ctx ~stamp ~requester ~trail;
          state
        end
    | IReturn { stamp } ->
        ctx.possession ();
        Proto_util.serve_all ctx;
        dispatch ctx { state with holding = Not_holding } ~stamp
    | IGimme { requester; span; stamp; trail } ->
        if requester = ctx.self then state
        else begin
          ctx.search_forward ();
          let state =
            { state with traps = push_trap state.traps requester trail }
          in
          (match state.holding with
          | Lent -> ()
          | Not_holding ->
              if span >= 2 then begin
                let jump = span / 2 in
                let dir = if state.last_stamp >= stamp then jump else -jump in
                let dst = Node_intf.forward_node ~n:ctx.n ctx.self dir in
                ctx.send ~channel:Network.Cheap ~dst
                  (IGimme
                     { requester; span = jump; stamp; trail = ctx.self :: trail })
              end);
          state
        end

  let on_timer _ctx state ~key:_ = state
end

(* Typed handles are the codec-derivation hooks: the wire layer pairs
   them with the [rotation_msg]/[inverse_msg] codecs. *)
type rotation_state = Rotation.state
type inverse_state = Inverse.state

let protocol_rotation_t :
    (module Node_intf.PROTOCOL
       with type state = rotation_state
        and type msg = rotation_msg) =
  (module struct
    include Rotation

    type nonrec state = Rotation.state
    type msg = rotation_msg
  end)

let protocol_rotation : (module Node_intf.PROTOCOL) =
  (module (val protocol_rotation_t))

let protocol_inverse_t :
    (module Node_intf.PROTOCOL
       with type state = inverse_state
        and type msg = inverse_msg) =
  (module struct
    include Inverse

    type nonrec state = Inverse.state
    type msg = inverse_msg
  end)

let protocol_inverse : (module Node_intf.PROTOCOL) =
  (module (val protocol_inverse_t))
