(** System Search restricted to cyclic (sequential) search — Lemma 5.

    Search messages traverse the ring node by node ([y = x⁺¹] in rules 5
    and 6), laying a trap at every node they visit, while the token also
    rotates. Responsiveness is O(N): within N message delays the search
    reaches the node that has (or will get) the token. This protocol
    exists to show why the {e binary} search matters — it burns Θ(N)
    search messages per request where BinarySearch needs O(log N). *)

open Tr_sim

type msg =
  | Token of { stamp : int }
  | Loan of { stamp : int }
  | Return of { stamp : int }
  | Gimme of { requester : int; ttl : int }
      (** Sequential search with a hop budget of [n]. *)

type state

val protocol : (module Node_intf.PROTOCOL)

val protocol_t :
  (module Node_intf.PROTOCOL with type state = state and type msg = msg)
(** Typed handle (codec-derivation hook): lets the wire layer pair the
    protocol with its message codec without losing the [msg] equality. *)

val trap_queue : state -> int list
