open Tr_sim

type msg =
  | Token of { stamp : int }
  | Loan of { stamp : int }
  | Return of { stamp : int }
  | Gimme of { requester : int; ttl : int }

type holding = Not_holding | Lent

type state = {
  holding : holding;
  traps : Proto_util.Traps.t;
}

let trap_queue state = Proto_util.Traps.to_list state.traps

let classify = function
  | Token _ | Loan _ | Return _ -> Metrics.Token_msg
  | Gimme _ -> Metrics.Control_msg

let label = function
  | Token { stamp } -> Printf.sprintf "token#%d" stamp
  | Loan { stamp } -> Printf.sprintf "loan#%d" stamp
  | Return { stamp } -> Printf.sprintf "return#%d" stamp
  | Gimme { requester; ttl } -> Printf.sprintf "gimme(req=%d ttl=%d)" requester ttl

let rec dispatch (ctx : msg Node_intf.ctx) state ~stamp =
  match Proto_util.Traps.pop state.traps with
  | Some (requester, traps) ->
      if requester = ctx.self then dispatch ctx { state with traps } ~stamp
      else begin
        ctx.send ~dst:requester (Loan { stamp });
        { holding = Lent; traps }
      end
  | None ->
      ctx.send
        ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
        (Token { stamp = stamp + 1 });
      { state with holding = Not_holding }

(* Named (rather than inline) so [protocol_t] below can expose the typed
   module the wire-codec layer pairs with its codec. *)
module P = struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "seq-search"

    let describe =
      "System Search with cyclic search restriction (Lemma 5): searches \
       walk the ring node by node; O(N) responsiveness, Θ(N) search \
       messages per request"

    let classify = classify
    let label = label

    let init (ctx : msg Node_intf.ctx) =
      if ctx.self = 0 then begin
        ctx.possession ();
        ctx.send ~dst:(Node_intf.succ_node ~n:ctx.n 0) (Token { stamp = 1 })
      end;
      { holding = Not_holding; traps = Proto_util.Traps.empty }

    let on_request (ctx : msg Node_intf.ctx) state =
      ctx.send ~channel:Network.Cheap
        ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
        (Gimme { requester = ctx.self; ttl = ctx.n - 1 });
      state

    let on_message (ctx : msg Node_intf.ctx) state ~src msg =
      match msg with
      | Token { stamp } ->
          ctx.possession ();
          Proto_util.serve_all ctx;
          dispatch ctx state ~stamp
      | Loan { stamp } ->
          ctx.possession ();
          Proto_util.serve_all ctx;
          ctx.send ~dst:src (Return { stamp });
          state
      | Return { stamp } ->
          ctx.possession ();
          Proto_util.serve_all ctx;
          dispatch ctx { state with holding = Not_holding } ~stamp
      | Gimme { requester; ttl } ->
          if requester = ctx.self then state
          else begin
            ctx.search_forward ();
            let state =
              { state with traps = Proto_util.Traps.push state.traps requester }
            in
            if ttl > 1 then
              ctx.send ~channel:Network.Cheap
                ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
                (Gimme { requester; ttl = ttl - 1 });
            state
          end

    let on_timer _ctx state ~key:_ = state
end

let protocol_t :
    (module Node_intf.PROTOCOL with type state = state and type msg = msg) =
  (module P)

let protocol : (module Node_intf.PROTOCOL) = (module P)
