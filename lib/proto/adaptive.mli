(** Demand-adaptive token speed (§4.4's last optimization).

    "The speed of token passing around the cycle can be varied according
    to the demand — very slow when only a few nodes require the token and
    much faster when there is high demand."

    The token carries an idle-hop counter. While demand is visible
    (someone was served recently, or the holder has traps or local
    requests) the token moves at full speed — one hop per time unit,
    exactly like {!Binsearch}. Once the counter shows a full demand-free
    revolution, the holder parks the token for [idle_delay] before the
    next hop, cutting idle token traffic by that factor. Any demand signal
    reaching the parked holder — a local request, a gimme laying a trap —
    releases the token immediately, so responsiveness under load is
    unchanged while idle message cost drops. *)

open Tr_sim

type msg =
  | Token of { stamp : int; idle_hops : int }
  | Loan of { stamp : int }
  | Return of { stamp : int }
  | Gimme of { requester : int; span : int; stamp : int }

type state

val make :
  ?idle_delay:float ->
  unit ->
  (module Node_intf.PROTOCOL with type state = state and type msg = msg)
(** Default [idle_delay] is 8.0 time units per hop once idle. The package
    keeps [state] visible for introspection. *)

val protocol : (module Node_intf.PROTOCOL)
val is_parked : state -> bool
