(** Dynamic ring membership — the §5 future-work extension.

    "Our future plans include making the protocols more dynamic with
    respect to the nodes comprising the network. It is possible to modify
    the protocol to handle nodes that asynchronously leave and join the
    group."

    The logical ring is maintained by per-node successor pointers over
    the (fixed) set of simulator nodes; only {e members} participate.
    Reconfiguration is {b token-ordered} — the classic trick that makes
    membership changes trivially safe: splices happen only at the node
    that currently holds the token, so no two reconfigurations race and
    the token can never be in the severed part of the ring.

    - {b Join}: a dormant node sends [JoinReq] (cheap, retried on a
      timer) to its {e contact} (node 0 by default). The contact queues
      it; when the contact next holds the token it splices the newcomer
      between itself and its successor and transfers the token through
      it, which both installs the pointers and initializes the
      newcomer's view.
    - {b Leave}: a member leaves when it holds the token: it hands the
      token to its successor together with a [Splice] notice that the
      predecessor — which the token tracks as it moves — must bypass it.

    Requests at members are served by the rotating token exactly as in
    {!Ring}; requests at non-members wait until the node has joined.

    Schedules are given per node at construction ([joins]/[leaves] as
    virtual times); initial members are [0 .. initial_members - 1]. *)

open Tr_sim

type msg =
  | Token of { stamp : int; pred : int; bypass : int option }
      (** [pred] is the node the token just left; [bypass] asks the
          receiver to drop [pred]'s predecessor-ship in favour of the
          leaving node's predecessor. *)
  | JoinReq of { joiner : int }
  | Welcome of { succ : int }
      (** Sent by the contact when splicing: "you are now a member; your
          successor is [succ]; the token follows." *)
  | Relink of { leaver : int; new_succ : int }
      (** Sent by a leaver to its predecessor: bypass me. Departed nodes
          also ghost-forward any stray token, so a late [Relink] is
          harmless. *)

type state

val make :
  ?initial_members:int ->
  ?contact:int ->
  ?joins:(int * float) list ->
  ?leaves:(int * float) list ->
  unit ->
  (module Node_intf.PROTOCOL with type state = state and type msg = msg)
(** [initial_members] defaults to the full ring (making this behave as
    {!Ring}); [joins]/[leaves] map node ids to the virtual time they ask
    to join/leave. @raise Invalid_argument at [init] on inconsistent
    schedules (joining an initial member, contact not a member, ...). *)

val protocol : (module Node_intf.PROTOCOL)

(** {1 Introspection} *)

val is_member : state -> bool
val successor : state -> int option
(** The node's current successor pointer, when a member. *)
