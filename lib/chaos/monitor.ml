(* Online stabilization monitor — the operational reading of the prefix
   property (reactive proof-labeling's "has the run re-stabilized?"),
   phrased so both backends can answer it the same way: after every
   fault window closes at [clear_time], each (probed) node must get a
   post-clear request served. The instant the last one does is
   [stabilized_at]; a protocol that leaves a node unserved past the
   deadline is flagged as not recovering.

   Per-node cells have a single writer (the node's shard / the one sim
   domain), so plain arrays suffice; aggregate queries are meant for
   after the run or best-effort polling during it. *)

type t = {
  n : int;
  clear_time : float;
  deadline : float;
  probed : bool array;
  first_serve : float array;  (* nan until the node's post-clear serve *)
}

let create ~n ~clear_time ~deadline =
  if n < 1 then invalid_arg "Monitor.create: n < 1";
  if deadline <= clear_time then invalid_arg "Monitor.create: deadline before clear";
  {
    n;
    clear_time;
    deadline;
    probed = Array.make n false;
    first_serve = Array.make n nan;
  }

let clear_time t = t.clear_time
let deadline t = t.deadline
let note_probe t ~node = t.probed.(node) <- true

let note_serve t ~now ~node =
  if now >= t.clear_time && t.probed.(node) && Float.is_nan t.first_serve.(node)
  then t.first_serve.(node) <- now

let pending_nodes t =
  List.filter
    (fun i -> t.probed.(i) && Float.is_nan t.first_serve.(i))
    (List.init t.n Fun.id)

let probed_count t =
  Array.fold_left (fun acc p -> if p then acc + 1 else acc) 0 t.probed

let stabilized_at t =
  if probed_count t = 0 then None
  else
    let worst = ref t.clear_time and complete = ref true in
    Array.iteri
      (fun i p ->
        if p then
          let s = t.first_serve.(i) in
          if Float.is_nan s then complete := false
          else if s > !worst then worst := s)
      t.probed;
    if !complete then Some !worst else None

let recovered t = stabilized_at t <> None

let recovery_time t =
  Option.map (fun s -> s -. t.clear_time) (stabilized_at t)

let flagged t ~now = now >= t.deadline && not (recovered t)
