(** Seed-deterministic fault injection shared by both backends.

    Every decision is a pure hash of [(seed, fault index, src, dst, k)]
    where [k] is the per-link send counter, advanced on {e every} send.
    There is no mutable RNG stream, so two backends observing the same
    per-link traffic inject the identical fault sequence for the same
    seed — determinism is per-link and survives multi-domain shard
    scheduling. Injection counts, a bounded event log and an
    interleaving-independent schedule digest are kept per instance
    (atomics — the live shards share one injector). *)

type action = {
  drop : bool;  (** Discard the send (partition / link loss / churn). *)
  copies : int;  (** Deliveries to make: 1 normal, 2+ duplicated, 0 dropped. *)
  extra_delay : float;  (** Reorder holdback, in clock units. *)
  corrupt : bool;  (** Flip bytes in the encoded frame (live backend). *)
  link_count : int;  (** The [k] this decision was derived from. *)
}

type event = { label : string; src : int; dst : int; k : int }

type t

val create : seed:int -> n:int -> Scenario.t -> t
(** @raise Invalid_argument if [n < 1]. *)

val scenario : t -> Scenario.t
val seed : t -> int

val on_send : t -> now:float -> src:int -> dst:int -> action
(** Decide the fate of one send. Must be called exactly once per
    protocol-level send so both backends agree on [k]; apply [copies] /
    [extra_delay] / [corrupt] to the delivery. Only the source's owning
    shard may call this for a given [src]. *)

val node_down : t -> now:float -> node:int -> bool
(** Churn: is [node] out of the cluster at [now]? Backends suppress the
    node's deliveries, timers and request arrivals while down; it
    rejoins with whatever stale state it had. *)

val down_until : t -> now:float -> node:int -> float
(** Latest close of a churn window covering [node] at [now]; [now] when
    the node is up. Backends park suppressed timers here so a rejoining
    node resumes its timer-driven behaviour (with stale state). *)

val timer_scale : t -> now:float -> node:int -> float
(** Clock-skew factor to multiply a timer delay armed by [node] at
    [now]; [1.0] when no skew window is active. *)

val corrupt_payload : t -> src:int -> dst:int -> k:int -> string -> string
(** Deterministically flip 1-3 bytes of an encoded frame — same
    [(seed, link, k)], same mangling. *)

val counts : t -> (string * int) list
(** Injection counters by fault class:
    [partition_drops], [loss_drops], [duplicates], [reorders],
    [corruptions], [churn_drops], [skew_scalings]. *)

val total_injected : t -> int

val schedule_digest : t -> int
(** Order-independent hash over every injected event — equal per-link
    event sets digest equal regardless of backend interleaving. *)

val events : t -> event list
(** The first 64 injected events (slot order). *)
