(* Declarative fault scenarios. A scenario is a list of fault clauses,
   each active inside a [from, until) window measured in clock units —
   the same unit the simulator's virtual clock and the live runtime's
   scaled clock both count in, so one spec string drives both backends.

   Spec grammar (clauses joined by '+', windows as '@from-until'):

     partition:0-3|4-7@10-40        two groups, cross-traffic dropped
     loss:2>5,0.3@5-30              drop 30% of frames on link 2->5
     loss:*>5,0.3@5-30              ... into node 5 from anywhere
     dup:0.1@5-30                   duplicate 10% of deliveries
     reorder:0.2,4@5-30             delay 20% of deliveries by up to 4 units
     corrupt:0.05@5-30              flip bytes in 5% of encoded frames
     skew:3,2.0@10-50               node 3's timers run 2x slow
     churn:3@20-60                  node 3 leaves at 20, rejoins at 60 *)

type window = { from_ : float; until : float }

type fault =
  | Partition of { groups : int list list; window : window }
  | Link_loss of { src : int option; dst : int option; p : float; window : window }
  | Duplicate of { p : float; window : window }
  | Reorder of { p : float; max_delay : float; window : window }
  | Corrupt of { p : float; window : window }
  | Clock_skew of { node : int option; factor : float; window : window }
  | Churn of { node : int; window : window }

type t = { spec : string; faults : fault list }

let spec t = t.spec
let faults t = t.faults
let empty = { spec = ""; faults = [] }

let window_of = function
  | Partition { window; _ }
  | Link_loss { window; _ }
  | Duplicate { window; _ }
  | Reorder { window; _ }
  | Corrupt { window; _ }
  | Clock_skew { window; _ }
  | Churn { window; _ } ->
      window

let active window ~now = now >= window.from_ && now < window.until

(* The instant every fault window has closed — recovery clocks start
   here. 0 for an empty scenario. *)
let clear_time t =
  List.fold_left (fun acc f -> Stdlib.max acc (window_of f).until) 0.0 t.faults

let fault_label = function
  | Partition _ -> "partition"
  | Link_loss _ -> "loss"
  | Duplicate _ -> "dup"
  | Reorder _ -> "reorder"
  | Corrupt _ -> "corrupt"
  | Clock_skew _ -> "skew"
  | Churn _ -> "churn"

(* ---------------- parsing ---------------- *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let parse_float what s =
  match float_of_string_opt (String.trim s) with
  | Some f when f >= 0.0 -> Ok f
  | _ -> err "%s: expected a non-negative number, got %S" what s

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some i when i >= 0 -> Ok i
  | _ -> err "%s: expected a non-negative integer, got %S" what s

let parse_node_opt what s =
  let s = String.trim s in
  if s = "*" then Ok None
  else
    let* i = parse_int what s in
    Ok (Some i)

let parse_prob what s =
  let* p = parse_float what s in
  if p <= 1.0 then Ok p else err "%s: probability %g out of [0,1]" what p

let split_on char s = String.split_on_char char s |> List.map String.trim

(* "0-3" -> [0;1;2;3]; "5" -> [5]; members joined by ','. *)
let parse_members what s =
  let part acc piece =
    let* acc = acc in
    match split_on '-' piece with
    | [ one ] ->
        let* i = parse_int what one in
        Ok (i :: acc)
    | [ lo; hi ] ->
        let* lo = parse_int what lo in
        let* hi = parse_int what hi in
        if hi < lo then err "%s: empty range %d-%d" what lo hi
        else Ok (List.rev_append (List.init (hi - lo + 1) (fun k -> lo + k)) acc)
    | _ -> err "%s: bad range %S" what piece
  in
  let* members = List.fold_left part (Ok []) (split_on ',' s) in
  Ok (List.rev members)

(* "<body>@<from>-<until>" -> body, window. *)
let parse_window clause rest =
  match split_on '@' rest with
  | [ body; w ] -> (
      match split_on '-' w with
      | [ f; u ] ->
          let* from_ = parse_float (clause ^ " window start") f in
          let* until = parse_float (clause ^ " window end") u in
          if until <= from_ then err "%s: window %g-%g is empty" clause from_ until
          else Ok (body, { from_; until })
      | _ -> err "%s: window must be @from-until, got %S" clause w)
  | _ -> err "%s: missing @from-until window" clause

let parse_clause clause =
  match String.index_opt clause ':' with
  | None -> err "chaos clause %S: expected head:args" clause
  | Some i -> (
      let head = String.trim (String.sub clause 0 i) in
      let rest = String.sub clause (i + 1) (String.length clause - i - 1) in
      let* body, window = parse_window head rest in
      match head with
      | "partition" ->
          let groups = split_on '|' body in
          if List.length groups < 2 then
            err "partition: need at least two |-separated groups"
          else
            let* groups =
              List.fold_left
                (fun acc g ->
                  let* acc = acc in
                  let* members = parse_members "partition group" g in
                  if members = [] then err "partition: empty group"
                  else Ok (members :: acc))
                (Ok []) groups
            in
            Ok (Partition { groups = List.rev groups; window })
      | "loss" -> (
          match split_on ',' body with
          | [ link; p ] -> (
              match split_on '>' link with
              | [ s; d ] ->
                  let* src = parse_node_opt "loss src" s in
                  let* dst = parse_node_opt "loss dst" d in
                  let* p = parse_prob "loss probability" p in
                  Ok (Link_loss { src; dst; p; window })
              | _ -> err "loss: link must be src>dst (use * as wildcard)")
          | _ -> err "loss: expected src>dst,p")
      | "dup" ->
          let* p = parse_prob "dup probability" body in
          Ok (Duplicate { p; window })
      | "reorder" -> (
          match split_on ',' body with
          | [ p; d ] ->
              let* p = parse_prob "reorder probability" p in
              let* max_delay = parse_float "reorder max delay" d in
              if max_delay <= 0.0 then err "reorder: max delay must be positive"
              else Ok (Reorder { p; max_delay; window })
          | _ -> err "reorder: expected p,max_delay")
      | "corrupt" ->
          let* p = parse_prob "corrupt probability" body in
          Ok (Corrupt { p; window })
      | "skew" -> (
          match split_on ',' body with
          | [ node; f ] ->
              let* node = parse_node_opt "skew node" node in
              let* factor = parse_float "skew factor" f in
              if factor <= 0.0 then err "skew: factor must be positive"
              else Ok (Clock_skew { node; factor; window })
          | _ -> err "skew: expected node,factor")
      | "churn" ->
          let* node = parse_int "churn node" body in
          Ok (Churn { node; window })
      | other -> err "unknown chaos fault %S" other)

let of_string spec =
  let spec = String.trim spec in
  if spec = "" then Ok empty
  else
    let* faults =
      List.fold_left
        (fun acc clause ->
          let* acc = acc in
          if String.trim clause = "" then Ok acc
          else
            let* f = parse_clause (String.trim clause) in
            Ok (f :: acc))
        (Ok []) (split_on '+' spec)
    in
    Ok { spec; faults = List.rev faults }

let of_string_exn spec =
  match of_string spec with Ok t -> t | Error m -> invalid_arg m

(* Every node id a scenario names must exist in an [n]-node run. *)
let validate t ~n =
  let check_node what = function
    | Some i when i >= n -> err "%s: node %d out of range (n=%d)" what i n
    | _ -> Ok ()
  in
  List.fold_left
    (fun acc f ->
      let* () = acc in
      match f with
      | Partition { groups; _ } ->
          List.fold_left
            (fun acc g ->
              let* () = acc in
              List.fold_left
                (fun acc i -> let* () = acc in check_node "partition" (Some i))
                (Ok ()) g)
            (Ok ()) groups
      | Link_loss { src; dst; _ } ->
          let* () = check_node "loss src" src in
          check_node "loss dst" dst
      | Clock_skew { node; _ } -> check_node "skew" node
      | Churn { node; _ } -> check_node "churn" (Some node)
      | Duplicate _ | Reorder _ | Corrupt _ -> Ok ())
    (Ok ()) t.faults

let examples =
  [
    ("partition:0-3|4-7@10-40", "split an 8-ring in half for 30 units");
    ("loss:*>5,0.3@5-30", "30% of frames into node 5 vanish");
    ("dup:0.1@5-30", "10% of deliveries arrive twice");
    ("reorder:0.2,4@5-30", "20% of deliveries held back up to 4 units");
    ("corrupt:0.05@5-30", "5% of encoded frames get byte flips");
    ("skew:3,2.0@10-50", "node 3's timers run at half speed");
    ("churn:3@20-60", "node 3 leaves at t=20 and rejoins at t=60");
    ( "partition:0-1|2-3@10-25+corrupt:0.1@5-30",
      "clauses compose with '+'" );
  ]
