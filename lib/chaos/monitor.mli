(** Online stabilization monitor.

    The operational reading of the prefix property for chaos runs: after
    every fault window closes at [clear_time], each probed node must get
    a post-clear request served. [stabilized_at] is the instant the last
    one does; a run that leaves a probed node unserved past [deadline]
    is {!flagged} as not recovering. Per-node cells have one writer (the
    node's owning shard), so the monitor is safe to feed from live taps;
    aggregate queries are for after the run or best-effort polling. *)

type t

val create : n:int -> clear_time:float -> deadline:float -> t
(** @raise Invalid_argument if [n < 1] or [deadline <= clear_time]. *)

val clear_time : t -> float
val deadline : t -> float

val note_probe : t -> node:int -> unit
(** Declare that [node] has (or will get) a post-clear probe request.
    Only probed nodes participate in stabilization. *)

val note_serve : t -> now:float -> node:int -> unit
(** Feed every serve; pre-clear serves and unprobed nodes are ignored. *)

val stabilized_at : t -> float option
(** Time the last probed node got its post-clear serve; [None] while
    any is still waiting (or nothing was probed). *)

val recovered : t -> bool
val recovery_time : t -> float option
(** [stabilized_at - clear_time]. *)

val flagged : t -> now:float -> bool
(** True once [now] passed the deadline without recovery. *)

val pending_nodes : t -> int list
(** Probed nodes still waiting for their post-clear serve. *)
