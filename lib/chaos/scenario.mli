(** Declarative fault scenarios, one spec string for both backends.

    A scenario is a '+'-joined list of fault clauses, each carrying an
    activation window ['@from-until'] in clock units — the unit the
    simulator's virtual clock and the live runtime's scaled clock share,
    so the same spec drives either backend. See {!examples}. *)

type window = { from_ : float; until : float }

type fault =
  | Partition of { groups : int list list; window : window }
      (** Traffic between different groups is dropped. Nodes in no group
          communicate freely with everyone. *)
  | Link_loss of { src : int option; dst : int option; p : float; window : window }
      (** Directional loss: a send matching [src -> dst] ([None] is a
          wildcard) is dropped with probability [p] — asymmetric loss is
          two clauses with different directions. *)
  | Duplicate of { p : float; window : window }
      (** A delivery is duplicated (same destination) with probability [p]. *)
  | Reorder of { p : float; max_delay : float; window : window }
      (** A delivery is held back by up to [max_delay] extra units with
          probability [p], letting later sends overtake it. *)
  | Corrupt of { p : float; window : window }
      (** A frame's encoded bytes are flipped with probability [p] — on
          the live backend this exercises the decoder's resync path; the
          simulator models detect-and-drop. *)
  | Clock_skew of { node : int option; factor : float; window : window }
      (** Timers at [node] ([None] = every node) are stretched by
          [factor] while the window is active. *)
  | Churn of { node : int; window : window }
      (** [node] leaves the cluster at [from_] and rejoins at [until]
          with whatever (stale) protocol state it had. *)

type t

val empty : t
val spec : t -> string
(** The original spec string (empty for {!empty}). *)

val faults : t -> fault list
val window_of : fault -> window
val active : window -> now:float -> bool
val fault_label : fault -> string

val clear_time : t -> float
(** The instant every fault window has closed; recovery clocks start
    here. [0.0] for an empty scenario. *)

val of_string : string -> (t, string) result
val of_string_exn : string -> t
(** @raise Invalid_argument on a malformed spec. *)

val validate : t -> n:int -> (unit, string) result
(** Check every node id the scenario names against ring size [n]. *)

val examples : (string * string) list
(** (spec, description) pairs for [--help] text. *)
