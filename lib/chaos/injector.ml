(* Seed-deterministic fault injection.

   Every decision is a pure hash of (seed, fault index, src, dst, k)
   where k is the per-link send counter — no mutable RNG stream. Two
   backends observing the same per-link traffic therefore inject the
   *identical* fault sequence for the same seed, regardless of how their
   event loops interleave links: determinism is per-link, so it survives
   multi-domain shard scheduling on the live runtime and event-heap
   ordering in the simulator. The per-link counter advances on every
   send (active windows or not), so a fault window opening later in one
   backend than the traffic pattern of the other cannot shift k. *)

type action = {
  drop : bool;
  copies : int;
  extra_delay : float;
  corrupt : bool;
  link_count : int;
}

let pass_action ~k =
  { drop = false; copies = 1; extra_delay = 0.0; corrupt = false; link_count = k }

type event = { label : string; src : int; dst : int; k : int }

let max_logged = 64

type t = {
  seed : int;
  n : int;
  scenario : Scenario.t;
  faults : (int * Scenario.fault) array;  (* (stable fault index, fault) *)
  (* Per-source link counters; each source is only ever touched by the
     shard (or the single sim domain) that owns it, so the per-source
     table has one writer. *)
  links : (int, int ref) Hashtbl.t array;
  (* Injection counts per fault class. *)
  partition_drops : int Atomic.t;
  loss_drops : int Atomic.t;
  duplicates : int Atomic.t;
  reorders : int Atomic.t;
  corruptions : int Atomic.t;
  churn_drops : int Atomic.t;
  skew_scalings : int Atomic.t;
  (* Order-independent digest over every injected event: equal per-link
     event sets hash equal regardless of interleaving. *)
  digest : int Atomic.t;
  log_len : int Atomic.t;
  log : event option array;
}

let create ~seed ~n scenario =
  if n < 1 then invalid_arg "Injector.create: n < 1";
  {
    seed;
    n;
    scenario;
    faults = Array.of_list (List.mapi (fun i f -> (i, f)) (Scenario.faults scenario));
    links = Array.init n (fun _ -> Hashtbl.create 8);
    partition_drops = Atomic.make 0;
    loss_drops = Atomic.make 0;
    duplicates = Atomic.make 0;
    reorders = Atomic.make 0;
    corruptions = Atomic.make 0;
    churn_drops = Atomic.make 0;
    skew_scalings = Atomic.make 0;
    digest = Atomic.make 0;
    log_len = Atomic.make 0;
    log = Array.make max_logged None;
  }

let scenario t = t.scenario
let seed t = t.seed

(* ---------------- the pure decision core ---------------- *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let feed h v =
  mix64 (Int64.add (Int64.mul h 0x100000001B3L) (Int64.of_int v))

let decision_hash ~seed ~fault ~src ~dst ~k =
  let h = mix64 (Int64.add (Int64.of_int seed) 0x9E3779B97F4A7C15L) in
  let h = feed h fault in
  let h = feed h src in
  let h = feed h dst in
  feed h k

(* Uniform in [0,1) from the top 53 bits. *)
let u01 h = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let chance ~seed ~fault ~src ~dst ~k p =
  p > 0.0 && u01 (decision_hash ~seed ~fault ~src ~dst ~k) < p

(* ---------------- bookkeeping ---------------- *)

let record t ~fault ~label ~src ~dst ~k counter =
  Atomic.incr counter;
  let ev = Int64.to_int (decision_hash ~seed:t.seed ~fault ~src ~dst ~k) land max_int in
  (* Commutative fold: the digest is interleaving-independent. *)
  let rec add () =
    let cur = Atomic.get t.digest in
    if not (Atomic.compare_and_set t.digest cur ((cur + ev) land max_int)) then add ()
  in
  add ();
  let slot = Atomic.fetch_and_add t.log_len 1 in
  if slot < max_logged then t.log.(slot) <- Some { label; src; dst; k }

let schedule_digest t = Atomic.get t.digest

let events t =
  let len = Stdlib.min (Atomic.get t.log_len) max_logged in
  List.filter_map (fun i -> t.log.(i)) (List.init len Fun.id)

let counts t =
  [
    ("partition_drops", Atomic.get t.partition_drops);
    ("loss_drops", Atomic.get t.loss_drops);
    ("duplicates", Atomic.get t.duplicates);
    ("reorders", Atomic.get t.reorders);
    ("corruptions", Atomic.get t.corruptions);
    ("churn_drops", Atomic.get t.churn_drops);
    ("skew_scalings", Atomic.get t.skew_scalings);
  ]

let total_injected t =
  List.fold_left (fun acc (_, v) -> acc + v) 0 (counts t)

(* ---------------- queries ---------------- *)

let node_down t ~now ~node =
  Array.exists
    (fun (_, f) ->
      match f with
      | Scenario.Churn { node = m; window } ->
          m = node && Scenario.active window ~now
      | _ -> false)
    t.faults

(* Latest close of a churn window covering [node] at [now]; [now] when
   the node is up — backends park suppressed timers here so a rejoining
   node resumes its timer-driven behaviour (with stale state). *)
let down_until t ~now ~node =
  Array.fold_left
    (fun acc (_, f) ->
      match f with
      | Scenario.Churn { node = m; window }
        when m = node && Scenario.active window ~now ->
          Stdlib.max acc window.Scenario.until
      | _ -> acc)
    now t.faults

let timer_scale t ~now ~node =
  let scale =
    Array.fold_left
      (fun acc (_, f) ->
        match f with
        | Scenario.Clock_skew { node = sel; factor; window }
          when Scenario.active window ~now
               && (match sel with None -> true | Some m -> m = node) ->
            acc *. factor
        | _ -> acc)
      1.0 t.faults
  in
  (* Count only scalings that actually changed a delay: overlapping
     windows may multiply out to 1.0, and a factor of 1.0 is a no-op. *)
  if scale <> 1.0 then Atomic.incr t.skew_scalings;
  scale

let same_group groups src dst =
  (* Cross-group traffic is cut; a node in no group talks to everyone. *)
  match
    ( List.find_opt (List.mem src) groups,
      List.find_opt (List.mem dst) groups )
  with
  | Some g1, Some g2 -> g1 == g2
  | _ -> true

let bump_link t ~src ~dst =
  let table = t.links.(src) in
  match Hashtbl.find_opt table dst with
  | Some r ->
      incr r;
      !r
  | None ->
      Hashtbl.add table dst (ref 1);
      1

let on_send t ~now ~src ~dst =
  let k = bump_link t ~src ~dst in
  if Array.length t.faults = 0 then pass_action ~k
  else begin
    let seed = t.seed in
    let drop = ref false and dropped_by = ref None in
    let copies = ref 1 and extra_delay = ref 0.0 and corrupt = ref false in
    Array.iter
      (fun (fault, f) ->
        if not !drop then
          match f with
          | Scenario.Churn { node; window } when Scenario.active window ~now ->
              if node = src || node = dst then begin
                drop := true;
                dropped_by := Some ("churn", fault)
              end
          | Scenario.Partition { groups; window }
            when Scenario.active window ~now ->
              if not (same_group groups src dst) then begin
                drop := true;
                dropped_by := Some ("partition", fault)
              end
          | Scenario.Link_loss { src = s; dst = d; p; window }
            when Scenario.active window ~now
                 && (match s with None -> true | Some m -> m = src)
                 && (match d with None -> true | Some m -> m = dst) ->
              if chance ~seed ~fault ~src ~dst ~k p then begin
                drop := true;
                dropped_by := Some ("loss", fault)
              end
          | _ -> ())
      t.faults;
    match !dropped_by with
    | Some (label, fault) ->
        let counter =
          match label with
          | "churn" -> t.churn_drops
          | "partition" -> t.partition_drops
          | _ -> t.loss_drops
        in
        record t ~fault ~label ~src ~dst ~k counter;
        { drop = true; copies = 0; extra_delay = 0.0; corrupt = false; link_count = k }
    | None ->
        Array.iter
          (fun (fault, f) ->
            match f with
            | Scenario.Duplicate { p; window } when Scenario.active window ~now ->
                if chance ~seed ~fault ~src ~dst ~k p then begin
                  copies := !copies + 1;
                  record t ~fault ~label:"dup" ~src ~dst ~k t.duplicates
                end
            | Scenario.Reorder { p; max_delay; window }
              when Scenario.active window ~now ->
                if chance ~seed ~fault ~src ~dst ~k p then begin
                  let h = decision_hash ~seed ~fault:(fault + 7919) ~src ~dst ~k in
                  extra_delay := !extra_delay +. (u01 h *. max_delay);
                  record t ~fault ~label:"reorder" ~src ~dst ~k t.reorders
                end
            | Scenario.Corrupt { p; window } when Scenario.active window ~now ->
                if chance ~seed ~fault ~src ~dst ~k p then begin
                  corrupt := true;
                  record t ~fault ~label:"corrupt" ~src ~dst ~k t.corruptions
                end
            | _ -> ())
          t.faults;
        {
          drop = false;
          copies = !copies;
          extra_delay = !extra_delay;
          corrupt = !corrupt;
          link_count = k;
        }
  end

(* Deterministic byte flips for the live backend: 1-3 positions chosen
   by the same hash family, so a given (seed, link, k) always mangles
   the same way. Flipping anywhere in the frame — magic, length or
   payload — is exactly what the decoder's resync path must absorb. *)
let corrupt_payload t ~src ~dst ~k payload =
  let len = String.length payload in
  if len = 0 then payload
  else begin
    let b = Bytes.of_string payload in
    let h0 = decision_hash ~seed:t.seed ~fault:104729 ~src ~dst ~k in
    let flips = 1 + (Int64.to_int h0 land 1) + (Int64.to_int h0 lsr 1 land 1) in
    for i = 0 to flips - 1 do
      let h = feed h0 i in
      let pos = Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int len)) in
      let mask = 1 + (Int64.to_int (Int64.shift_right_logical h 13) land 0xFE) in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask land 0xFF))
    done;
    Bytes.unsafe_to_string b
  end
