type mode = Rotate | Search

type directive = { mode : mode; park_after : int option }

let default = { mode = Search; park_after = None }

let mode_to_string = function Rotate -> "rotate" | Search -> "search"

let mode_of_string = function
  | "rotate" -> Some Rotate
  | "search" -> Some Search
  | _ -> None
