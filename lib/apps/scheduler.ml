open Tr_sim

type msg = Token of { stamp : int }

type holding = Not_holding | Working of { stamp : int; quantum_left : int }

type state = { holding : holding; served_this_visit : int }

let served_this_visit state = state.served_this_visit

let timer_slot = 1

let classify (Token _) = Metrics.Token_msg
let label (Token { stamp }) = Printf.sprintf "token#%d" stamp

let make ?(weight = fun _ -> 1) ?(slot_cost = 0.5) () :
    (module Node_intf.PROTOCOL) =
  (module struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "scheduler"

    let describe =
      Printf.sprintf
        "weighted round-robin scheduler: one token visit runs up to \
         weight(x) work items of %g time units each"
        slot_cost

    let classify = classify
    let label = label

    let pass_on (ctx : msg Node_intf.ctx) ~stamp =
      ctx.send ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self) (Token { stamp = stamp + 1 })

    (* Run work items one slot at a time; each occupies the resource for
       [slot_cost] before the next starts or the token moves on. *)
    let continue_or_pass (ctx : msg Node_intf.ctx) state ~stamp ~quantum_left =
      if quantum_left > 0 && ctx.pending () > 0 then begin
        ctx.set_timer ~delay:slot_cost ~key:timer_slot;
        { state with holding = Working { stamp; quantum_left } }
      end
      else begin
        pass_on ctx ~stamp;
        { state with holding = Not_holding }
      end

    let init (ctx : msg Node_intf.ctx) =
      if weight ctx.self <= 0 then
        invalid_arg
          (Printf.sprintf "Scheduler: non-positive weight for node %d" ctx.self);
      if ctx.self = 0 then begin
        ctx.possession ();
        ctx.send ~dst:(Node_intf.succ_node ~n:ctx.n 0) (Token { stamp = 1 })
      end;
      { holding = Not_holding; served_this_visit = 0 }

    let on_request _ctx state = state

    let on_message (ctx : msg Node_intf.ctx) state ~src:_ (Token { stamp }) =
      ctx.possession ();
      continue_or_pass ctx
        { state with served_this_visit = 0 }
        ~stamp ~quantum_left:(weight ctx.self)

    let on_timer (ctx : msg Node_intf.ctx) state ~key =
      if key <> timer_slot then state
      else
        match state.holding with
        | Working { stamp; quantum_left } ->
            (* The slot that just elapsed completes one work item. *)
            if ctx.pending () > 0 then ctx.serve ();
            let state =
              { state with served_this_visit = state.served_this_visit + 1 }
            in
            continue_or_pass ctx state ~stamp ~quantum_left:(quantum_left - 1)
        | Not_holding -> state
  end)

let protocol = make ()
