(** Totem-style total-order broadcast on the adaptive token.

    The paper motivates token rotation with group communication services
    (§1.1 cites the Totem single-ring protocol): the token is a roving
    sequencer. This application couples the hybrid rotate/search token
    movement (see {!Movement}) with a global sequence counter carried
    {e inside} the token: when a ready node obtains the token it stamps
    each of its pending broadcasts with consecutive sequence numbers and
    sends them to every node; nodes deliver strictly in sequence order,
    buffering anything that arrives early.

    The safety property is the paper's prefix property at application
    level: every node's delivery log is a prefix of the global sequence —
    regardless of message delays, because ordering comes from the token,
    not the network. Tests check exactly that, including under randomized
    delivery delays. *)

open Tr_sim

type payload = { origin : int; origin_seq : int }

type msg =
  | Token of { stamp : int; next_seq : int; mode : Movement.mode; idle_hops : int }
  | Loan of { stamp : int; next_seq : int }
  | Return of { stamp : int; next_seq : int }
  | Gimme of { requester : int; span : int; stamp : int }
  | Bcast of { seq : int; payload : payload }

type state

val make :
  ?directive:(unit -> Movement.directive) ->
  ?on_deliver:(self:int -> now:float -> seq:int -> payload -> unit) ->
  unit ->
  (module Node_intf.PROTOCOL with type state = state and type msg = msg)
(** [directive] is read by the token holder at every dispatch (default:
    always {!Movement.default}). [on_deliver] fires once per payload this
    node appends to its delivery log, in sequence order — on the engine's
    thread, so it must be fast and thread-safe on a live cluster. *)

module Impl :
  Node_intf.PROTOCOL with type state = state and type msg = msg
(** [make ()] with all defaults, for [Engine.Make]-based introspection
    (examples and tests). *)

val protocol : (module Node_intf.PROTOCOL)
(** [Impl], type-erased for the generic runner. *)

(** {1 Introspection} *)

val delivered : state -> payload list
(** This node's delivery log, in delivery order. *)

val delivered_count : state -> int
val buffered_count : state -> int
(** Broadcasts received out of order, awaiting their predecessors. *)

val next_expected_seq : state -> int
