open Tr_sim
module Traps = Tr_proto.Proto_util.Traps

type msg =
  | Token of { stamp : int; mode : Movement.mode; idle_hops : int }
  | Loan of { stamp : int }
  | Return of { stamp : int }
  | Gimme of { requester : int; span : int; stamp : int }

(* While inside a critical section the node physically keeps the token
   ([In_cs]); [return_to] remembers the lender when we entered from a
   loan. [Parked] also keeps the token physically here: an idle token
   that exceeded its park threshold waits for the next local request or
   incoming search instead of circulating. *)
type holding =
  | Not_holding
  | Lent
  | In_cs of { stamp : int; return_to : int option }
  | Parked of { stamp : int }

type state = {
  last_stamp : int;
  last_mode : Movement.mode;
      (** Movement mode of the last token this node saw — requesters
          suppress searches while the token is rotating. *)
  holding : holding;
  traps : Traps.t;
}

let in_critical_section state =
  match state.holding with
  | In_cs _ -> true
  | Not_holding | Lent | Parked _ -> false

let timer_exit = 1

let classify = function
  | Token _ | Loan _ | Return _ -> Metrics.Token_msg
  | Gimme _ -> Metrics.Control_msg

let label = function
  | Token { stamp; mode = Movement.Search; _ } -> Printf.sprintf "token#%d" stamp
  | Token { stamp; mode = Movement.Rotate; _ } ->
      Printf.sprintf "token#%d[rotate]" stamp
  | Loan { stamp } -> Printf.sprintf "loan#%d" stamp
  | Return { stamp } -> Printf.sprintf "return#%d" stamp
  | Gimme { requester; span; stamp } ->
      Printf.sprintf "gimme(req=%d span=%d stamp=%d)" requester span stamp

type event = [ `Enter | `Exit ]

let make ?(cs_duration = 2.0) ?directive ?on_event () :
    (module Node_intf.PROTOCOL with type state = state and type msg = msg) =
  let directive =
    match directive with Some f -> f | None -> fun () -> Movement.default
  in
  let emit (ctx : msg Node_intf.ctx) ev =
    match on_event with
    | None -> ()
    | Some f -> f ~self:ctx.self ~now:(ctx.now ()) (ev : event)
  in
  (module struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "mutex"

    let describe =
      Printf.sprintf
        "mutual-exclusion service on the hybrid rotate/search token: \
         critical sections hold the token for %g time units; FIFO trap \
         service"
        cs_duration

    let classify = classify
    let label = label

    (* [idle_hops] is how many consecutive idle visits the token has made
       including this one; a busy visit (critical section, loan round
       trip) resets it to zero. *)
    let rec dispatch (ctx : msg Node_intf.ctx) state ~stamp ~idle_hops =
      match Traps.pop state.traps with
      | Some (requester, traps) ->
          if requester = ctx.self then dispatch ctx { state with traps } ~stamp ~idle_hops
          else begin
            ctx.send ~dst:requester (Loan { stamp });
            { state with holding = Lent; traps }
          end
      | None ->
          let d = directive () in
          let park =
            match d.Movement.park_after with
            | Some k -> d.Movement.mode = Movement.Search && idle_hops >= k
            | None -> false
          in
          if park then begin
            ctx.note (fun () -> "park");
            { state with holding = Parked { stamp } }
          end
          else begin
            ctx.send
              ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
              (Token { stamp = stamp + 1; mode = d.Movement.mode; idle_hops });
            { state with holding = Not_holding }
          end

    (* Enter the critical section if work is pending; otherwise pass the
       token along immediately. *)
    let acquire (ctx : msg Node_intf.ctx) state ~stamp ~return_to ~idle_hops =
      if ctx.pending () > 0 then begin
        ctx.note (fun () -> "cs-enter");
        emit ctx `Enter;
        ctx.set_timer ~delay:cs_duration ~key:timer_exit;
        { state with holding = In_cs { stamp; return_to } }
      end
      else
        match return_to with
        | Some lender ->
            ctx.send ~dst:lender (Return { stamp });
            { state with holding = Not_holding }
        | None -> dispatch ctx state ~stamp ~idle_hops

    let init (ctx : msg Node_intf.ctx) =
      if ctx.self = 0 then begin
        ctx.possession ();
        let d = directive () in
        ctx.send
          ~dst:(Node_intf.succ_node ~n:ctx.n 0)
          (Token { stamp = 1; mode = d.Movement.mode; idle_hops = 0 })
      end;
      {
        last_stamp = 0;
        last_mode = Movement.Search;
        holding = Not_holding;
        traps = Traps.empty;
      }

    let on_request (ctx : msg Node_intf.ctx) state =
      match state.holding with
      | In_cs _ -> state (* will be picked up when the section exits *)
      | Parked { stamp } ->
          (* We already hold the token: wake it for the new request. *)
          ctx.note (fun () -> "unpark");
          acquire ctx
            { state with holding = Not_holding }
            ~stamp ~return_to:None ~idle_hops:0
      | Lent | Not_holding ->
          if
            state.last_mode = Movement.Rotate
            && (directive ()).Movement.mode = Movement.Rotate
            (* Rotation finds every requester; searching would only burn
               messages (and trap a loan out of the rotation order). Both
               conditions must agree: after an online Rotate→Search
               switch the token parks, so a requester that last saw a
               rotating token would strand itself by staying silent — a
               spurious Gimme is cheap, a stranded request is not. *)
          then state
          else
            let span = ctx.n / 2 in
            if span < 1 then state
            else begin
              let dst = Node_intf.forward_node ~n:ctx.n ctx.self span in
              ctx.send ~channel:Network.Cheap ~dst
                (Gimme { requester = ctx.self; span; stamp = state.last_stamp });
              state
            end

    let on_message (ctx : msg Node_intf.ctx) state ~src msg =
      match msg with
      | Token { stamp; mode; idle_hops } ->
          ctx.possession ();
          acquire ctx
            { state with last_stamp = stamp; last_mode = mode }
            ~stamp ~return_to:None ~idle_hops:(idle_hops + 1)
      | Loan { stamp } ->
          ctx.possession ();
          acquire ctx state ~stamp ~return_to:(Some src) ~idle_hops:0
      | Return { stamp } ->
          ctx.possession ();
          acquire ctx
            { state with holding = Not_holding }
            ~stamp ~return_to:None ~idle_hops:0
      | Gimme { requester; span; stamp } ->
          if requester = ctx.self then state
          else begin
            ctx.search_forward ();
            let state = { state with traps = Traps.push state.traps requester } in
            match state.holding with
            | In_cs _ | Lent -> state (* token is here or on loan; wait *)
            | Parked { stamp = held_stamp } ->
                (* Recall the parked token: serve the searcher directly. *)
                ctx.note (fun () -> "unpark");
                dispatch ctx
                  { state with holding = Not_holding }
                  ~stamp:held_stamp ~idle_hops:0
            | Not_holding ->
                if span >= 2 then begin
                  let jump = span / 2 in
                  let dir = if state.last_stamp >= stamp then jump else -jump in
                  let dst = Node_intf.forward_node ~n:ctx.n ctx.self dir in
                  ctx.send ~channel:Network.Cheap ~dst
                    (Gimme { requester; span = jump; stamp })
                end;
                state
          end

    let on_timer (ctx : msg Node_intf.ctx) state ~key =
      if key <> timer_exit then state
      else
        match state.holding with
        | In_cs { stamp; return_to } ->
            (* Exit: account one served request per section. *)
            if ctx.pending () > 0 then ctx.serve ();
            ctx.note (fun () -> "cs-exit");
            emit ctx `Exit;
            if ctx.pending () > 0 then
              (* More local work: re-enter immediately (we still hold). *)
              acquire ctx state ~stamp ~return_to ~idle_hops:0
            else begin
              match return_to with
              | Some lender ->
                  ctx.send ~dst:lender (Return { stamp });
                  { state with holding = Not_holding }
              | None ->
                  dispatch ctx { state with holding = Not_holding } ~stamp
                    ~idle_hops:0
            end
        | Not_holding | Lent | Parked _ -> state
  end)

let protocol : (module Node_intf.PROTOCOL) = (module (val make ()))

let cs_intervals trace =
  let open Trace in
  let pending_enter = Hashtbl.create 16 in
  List.fold_left
    (fun acc { time; event } ->
      match event with
      | Note { node; text } when String.equal text "cs-enter" ->
          Hashtbl.replace pending_enter node time;
          acc
      | Note { node; text } when String.equal text "cs-exit" -> (
          match Hashtbl.find_opt pending_enter node with
          | Some enter ->
              Hashtbl.remove pending_enter node;
              (node, enter, time) :: acc
          | None -> acc)
      | _ -> acc)
    [] (events trace)
  |> List.rev

let intervals_overlap intervals =
  let sorted =
    List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) intervals
  in
  let rec scan = function
    | (_, _, exit1) :: ((_, enter2, _) :: _ as rest) ->
        exit1 > enter2 || scan rest
    | [ _ ] | [] -> false
  in
  scan sorted
