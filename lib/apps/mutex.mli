(** Distributed mutual exclusion with real critical sections.

    The protocols in [Tr_proto] serve requests instantaneously (the
    paper's zero-cost local events). A mutual-exclusion {e service} holds
    the resource for a non-zero critical-section duration: the token
    holder enters its critical section, keeps the token for
    [cs_duration], then exits and moves on — traps queued meanwhile are
    honoured in FIFO order afterwards.

    Safety — at most one node inside a critical section at any time — is
    inherited from token uniqueness; tests reconstruct all CS intervals
    from the trace ([Note] events ["cs-enter"]/["cs-exit"]) and assert
    they never overlap, including under randomized message delays. *)

open Tr_sim

type msg =
  | Token of { stamp : int }
  | Loan of { stamp : int }
  | Return of { stamp : int }
  | Gimme of { requester : int; span : int; stamp : int }

type state

val make : ?cs_duration:float -> unit -> (module Node_intf.PROTOCOL)
(** Default [cs_duration] is 2.0 time units per critical section. *)

val protocol : (module Node_intf.PROTOCOL)

val in_critical_section : state -> bool

val cs_intervals : Trace.t -> (int * float * float) list
(** [(node, enter, exit)] for every completed critical section recorded
    in the trace, in entry order. *)

val intervals_overlap : (int * float * float) list -> bool
(** True if any two critical sections intersect — the safety violation. *)
