(** Distributed mutual exclusion with real critical sections.

    The protocols in [Tr_proto] serve requests instantaneously (the
    paper's zero-cost local events). A mutual-exclusion {e service} holds
    the resource for a non-zero critical-section duration: the token
    holder enters its critical section, keeps the token for
    [cs_duration], then exits and moves on — traps queued meanwhile are
    honoured in FIFO order afterwards.

    Token movement is hybrid (see {!Movement}): each token carries the
    mode it was dispatched under. In [Search] mode requesters chase the
    token with halving-span Gimme searches (the BinarySearch strategy);
    in [Rotate] mode the token circles the ring and requesters wait
    silently. A caller-supplied [directive] is consulted at every
    dispatch, so an online policy can flip modes (and enable idle
    parking) live; the defaults reproduce the pre-hybrid BinarySearch
    behaviour exactly.

    Safety — at most one node inside a critical section at any time — is
    inherited from token uniqueness; tests reconstruct all CS intervals
    from the trace ([Note] events ["cs-enter"]/["cs-exit"]) and assert
    they never overlap, including under randomized message delays. *)

open Tr_sim

type msg =
  | Token of { stamp : int; mode : Movement.mode; idle_hops : int }
  | Loan of { stamp : int }
  | Return of { stamp : int }
  | Gimme of { requester : int; span : int; stamp : int }

type state

type event = [ `Enter | `Exit ]
(** A critical section opened / closed at [self]. The service layer maps
    these to client grants and releases. *)

val make :
  ?cs_duration:float ->
  ?directive:(unit -> Movement.directive) ->
  ?on_event:(self:int -> now:float -> event -> unit) ->
  unit ->
  (module Node_intf.PROTOCOL with type state = state and type msg = msg)
(** Default [cs_duration] is 2.0 time units per critical section.
    [directive] is read by the token holder at every dispatch (default:
    always {!Movement.default}). [on_event] fires on every critical
    section enter/exit — on the engine's thread, so it must be fast and
    thread-safe when the protocol runs on a live cluster. *)

val protocol : (module Node_intf.PROTOCOL)

val in_critical_section : state -> bool

val cs_intervals : Trace.t -> (int * float * float) list
(** [(node, enter, exit)] for every completed critical section recorded
    in the trace, in entry order. *)

val intervals_overlap : (int * float * float) list -> bool
(** True if any two critical sections intersect — the safety violation. *)
