open Tr_sim
module IMap = Map.Make (Int)

type payload = { origin : int; origin_seq : int }

type msg =
  | Token of { stamp : int; next_seq : int; mode : Movement.mode; idle_hops : int }
  | Loan of { stamp : int; next_seq : int }
  | Return of { stamp : int; next_seq : int }
  | Gimme of { requester : int; span : int; stamp : int }
  | Bcast of { seq : int; payload : payload }

type holding = Not_holding | Lent | Parked of { stamp : int; next_seq : int }

type state = {
  last_stamp : int;
  last_mode : Movement.mode;
  holding : holding;
  traps : Tr_proto.Proto_util.Traps.t;
  (* Application state. *)
  origin_seq : int;  (** Broadcasts this node has originated. *)
  next_expected : int;  (** Next global sequence number to deliver. *)
  buffer : payload IMap.t;  (** Early arrivals, keyed by sequence. *)
  log : payload list;  (** Delivered payloads, newest first. *)
}

let delivered state = List.rev state.log
let delivered_count state = List.length state.log
let buffered_count state = IMap.cardinal state.buffer
let next_expected_seq state = state.next_expected

let classify = function
  | Token _ | Loan _ | Return _ -> Metrics.Token_msg
  | Gimme _ | Bcast _ -> Metrics.Control_msg

let label = function
  | Token { stamp; next_seq; mode = Movement.Search; _ } ->
      Printf.sprintf "token#%d(seq=%d)" stamp next_seq
  | Token { stamp; next_seq; mode = Movement.Rotate; _ } ->
      Printf.sprintf "token#%d(seq=%d)[rotate]" stamp next_seq
  | Loan { stamp; _ } -> Printf.sprintf "loan#%d" stamp
  | Return { stamp; _ } -> Printf.sprintf "return#%d" stamp
  | Gimme { requester; span; _ } ->
      Printf.sprintf "gimme(req=%d span=%d)" requester span
  | Bcast { seq; payload } ->
      Printf.sprintf "bcast(seq=%d from=%d.%d)" seq payload.origin
        payload.origin_seq

(* Deliver in strict sequence order; anything early waits in the buffer. *)
let rec deliver state seq payload =
  if seq < state.next_expected then state (* duplicate: already delivered *)
  else if seq > state.next_expected then
    { state with buffer = IMap.add seq payload state.buffer }
  else
    let state =
      {
        state with
        log = payload :: state.log;
        next_expected = state.next_expected + 1;
      }
    in
    match IMap.find_opt state.next_expected state.buffer with
    | Some next ->
        deliver
          { state with buffer = IMap.remove state.next_expected state.buffer }
          state.next_expected next
    | None -> state

let make ?directive ?on_deliver () :
    (module Node_intf.PROTOCOL with type state = state and type msg = msg) =
  let directive =
    match directive with Some f -> f | None -> fun () -> Movement.default
  in
  (* Run [deliver] and notify the hook once per payload newly appended to
     the log, in sequence order. [deliver] itself stays pure. *)
  let deliver_note (ctx : msg Node_intf.ctx) state seq payload =
    match on_deliver with
    | None -> deliver state seq payload
    | Some f ->
        let before = state.next_expected in
        let state = deliver state seq payload in
        let fresh = state.next_expected - before in
        if fresh > 0 then begin
          (* [log] is newest-first: the [fresh] head entries carry
             sequence numbers [before .. next_expected-1], reversed. *)
          let rec take k acc = function
            | p :: rest when k > 0 -> take (k - 1) (p :: acc) rest
            | _ -> acc
          in
          let now = ctx.now () in
          List.iteri
            (fun i p -> f ~self:ctx.self ~now ~seq:(before + i) p)
            (take fresh [] state.log)
        end;
        state
  in
  (* The holder turns every pending request into a sequenced broadcast.
     The sequencing right is exactly token possession, so numbers are
     globally unique and gap-free. *)
  let broadcast_pending (ctx : msg Node_intf.ctx) state ~next_seq =
    let state = ref state and seq = ref next_seq in
    while ctx.pending () > 0 do
      ctx.serve ();
      let payload = { origin = ctx.self; origin_seq = !state.origin_seq + 1 } in
      state := { !state with origin_seq = payload.origin_seq };
      (* Application data travels on the reliable channel: losing a
         sequenced broadcast would stall delivery at every node. Search
         messages stay cheap — dropping those only costs performance. *)
      for dst = 0 to ctx.n - 1 do
        if dst <> ctx.self then ctx.send ~dst (Bcast { seq = !seq; payload })
      done;
      state := deliver_note ctx !state !seq payload;
      incr seq
    done;
    (!state, !seq)
  in
  (module struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "total-order"

    let describe =
      "Totem-style total-order broadcast: the hybrid rotate/search token \
       carries the global sequence counter; delivery logs at all nodes \
       are prefixes of the token-defined order"

    let classify = classify
    let label = label

    (* [idle_hops]: consecutive idle token visits including this one; any
       broadcast or loan round trip resets it. *)
    let rec dispatch (ctx : msg Node_intf.ctx) state ~stamp ~next_seq ~idle_hops =
      match Tr_proto.Proto_util.Traps.pop state.traps with
      | Some (requester, traps) ->
          if requester = ctx.self then
            dispatch ctx { state with traps } ~stamp ~next_seq ~idle_hops
          else begin
            ctx.send ~dst:requester (Loan { stamp; next_seq });
            { state with holding = Lent; traps }
          end
      | None ->
          let d = directive () in
          let park =
            match d.Movement.park_after with
            | Some k -> d.Movement.mode = Movement.Search && idle_hops >= k
            | None -> false
          in
          if park then begin
            ctx.note (fun () -> "park");
            { state with holding = Parked { stamp; next_seq } }
          end
          else begin
            ctx.send
              ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
              (Token
                 { stamp = stamp + 1; next_seq; mode = d.Movement.mode; idle_hops });
            { state with holding = Not_holding }
          end

    let init (ctx : msg Node_intf.ctx) =
      let state =
        {
          last_stamp = 0;
          last_mode = Movement.Search;
          holding = Not_holding;
          traps = Tr_proto.Proto_util.Traps.empty;
          origin_seq = 0;
          next_expected = 1;
          buffer = IMap.empty;
          log = [];
        }
      in
      if ctx.self = 0 then begin
        ctx.possession ();
        let d = directive () in
        ctx.send
          ~dst:(Node_intf.succ_node ~n:ctx.n 0)
          (Token { stamp = 1; next_seq = 1; mode = d.Movement.mode; idle_hops = 0 })
      end;
      state

    let on_request (ctx : msg Node_intf.ctx) state =
      match state.holding with
      | Parked { stamp; next_seq } ->
          ctx.note (fun () -> "unpark");
          let state, next_seq =
            broadcast_pending ctx { state with holding = Not_holding } ~next_seq
          in
          dispatch ctx state ~stamp ~next_seq ~idle_hops:0
      | Lent | Not_holding ->
          if
            state.last_mode = Movement.Rotate
            && (directive ()).Movement.mode = Movement.Rotate
            (* As in [Mutex.on_request]: only stay silent when the token
               was last seen rotating AND the policy still wants
               rotation — after an online Rotate→Search switch the token
               parks and a silent requester strands its publish. *)
          then state
          else
            let span = ctx.n / 2 in
            if span < 1 then state
            else begin
              let dst = Node_intf.forward_node ~n:ctx.n ctx.self span in
              ctx.send ~channel:Network.Cheap ~dst
                (Gimme { requester = ctx.self; span; stamp = state.last_stamp });
              state
            end

    let on_message (ctx : msg Node_intf.ctx) state ~src msg =
      match msg with
      | Token { stamp; next_seq; mode; idle_hops } ->
          ctx.possession ();
          let busy = ctx.pending () > 0 in
          let state, next_seq =
            broadcast_pending ctx
              { state with last_stamp = stamp; last_mode = mode }
              ~next_seq
          in
          let idle_hops = if busy then 0 else idle_hops + 1 in
          dispatch ctx state ~stamp ~next_seq ~idle_hops
      | Loan { stamp; next_seq } ->
          ctx.possession ();
          let state, next_seq = broadcast_pending ctx state ~next_seq in
          ctx.send ~dst:src (Return { stamp; next_seq });
          state
      | Return { stamp; next_seq } ->
          ctx.possession ();
          let state, next_seq = broadcast_pending ctx state ~next_seq in
          dispatch ctx
            { state with holding = Not_holding }
            ~stamp ~next_seq ~idle_hops:0
      | Gimme { requester; span; stamp } ->
          if requester = ctx.self then state
          else begin
            ctx.search_forward ();
            let state =
              {
                state with
                traps = Tr_proto.Proto_util.Traps.push state.traps requester;
              }
            in
            match state.holding with
            | Lent -> state
            | Parked { stamp = held_stamp; next_seq } ->
                ctx.note (fun () -> "unpark");
                dispatch ctx
                  { state with holding = Not_holding }
                  ~stamp:held_stamp ~next_seq ~idle_hops:0
            | Not_holding ->
                if span >= 2 then begin
                  let jump = span / 2 in
                  let dir = if state.last_stamp >= stamp then jump else -jump in
                  let dst = Node_intf.forward_node ~n:ctx.n ctx.self dir in
                  ctx.send ~channel:Network.Cheap ~dst
                    (Gimme { requester; span = jump; stamp })
                end;
                state
          end
      | Bcast { seq; payload } -> deliver_note ctx state seq payload

    let on_timer _ctx state ~key:_ = state
  end)

module Impl = (val make ())

let protocol : (module Node_intf.PROTOCOL) = (module Impl)
