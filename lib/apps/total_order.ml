open Tr_sim
module IMap = Map.Make (Int)

type payload = { origin : int; origin_seq : int }

type msg =
  | Token of { stamp : int; next_seq : int }
  | Loan of { stamp : int; next_seq : int }
  | Return of { stamp : int; next_seq : int }
  | Gimme of { requester : int; span : int; stamp : int }
  | Bcast of { seq : int; payload : payload }

type holding = Not_holding | Lent

type state = {
  last_stamp : int;
  holding : holding;
  traps : Tr_proto.Proto_util.Traps.t;
  (* Application state. *)
  origin_seq : int;  (** Broadcasts this node has originated. *)
  next_expected : int;  (** Next global sequence number to deliver. *)
  buffer : payload IMap.t;  (** Early arrivals, keyed by sequence. *)
  log : payload list;  (** Delivered payloads, newest first. *)
}

let delivered state = List.rev state.log
let delivered_count state = List.length state.log
let buffered_count state = IMap.cardinal state.buffer
let next_expected_seq state = state.next_expected

let classify = function
  | Token _ | Loan _ | Return _ -> Metrics.Token_msg
  | Gimme _ | Bcast _ -> Metrics.Control_msg

let label = function
  | Token { stamp; next_seq } -> Printf.sprintf "token#%d(seq=%d)" stamp next_seq
  | Loan { stamp; _ } -> Printf.sprintf "loan#%d" stamp
  | Return { stamp; _ } -> Printf.sprintf "return#%d" stamp
  | Gimme { requester; span; _ } ->
      Printf.sprintf "gimme(req=%d span=%d)" requester span
  | Bcast { seq; payload } ->
      Printf.sprintf "bcast(seq=%d from=%d.%d)" seq payload.origin
        payload.origin_seq

(* Deliver in strict sequence order; anything early waits in the buffer. *)
let rec deliver state seq payload =
  if seq < state.next_expected then state (* duplicate: already delivered *)
  else if seq > state.next_expected then
    { state with buffer = IMap.add seq payload state.buffer }
  else
    let state =
      {
        state with
        log = payload :: state.log;
        next_expected = state.next_expected + 1;
      }
    in
    match IMap.find_opt state.next_expected state.buffer with
    | Some next ->
        deliver
          { state with buffer = IMap.remove state.next_expected state.buffer }
          state.next_expected next
    | None -> state

(* The holder turns every pending request into a sequenced broadcast. The
   sequencing right is exactly token possession, so numbers are globally
   unique and gap-free. *)
let broadcast_pending (ctx : msg Node_intf.ctx) state ~next_seq =
  let state = ref state and seq = ref next_seq in
  while ctx.pending () > 0 do
    ctx.serve ();
    let payload =
      { origin = ctx.self; origin_seq = !state.origin_seq + 1 }
    in
    state := { !state with origin_seq = payload.origin_seq };
    (* Application data travels on the reliable channel: losing a
       sequenced broadcast would stall delivery at every node. Search
       messages stay cheap — dropping those only costs performance. *)
    for dst = 0 to ctx.n - 1 do
      if dst <> ctx.self then ctx.send ~dst (Bcast { seq = !seq; payload })
    done;
    state := deliver !state !seq payload;
    incr seq
  done;
  (!state, !seq)

module Impl = struct
  type nonrec state = state
  type nonrec msg = msg

    let name = "total-order"

    let describe =
      "Totem-style total-order broadcast: the BinarySearch token carries \
       the global sequence counter; delivery logs at all nodes are \
       prefixes of the token-defined order"

    let classify = classify
    let label = label

    let rec dispatch (ctx : msg Node_intf.ctx) state ~stamp ~next_seq =
      match Tr_proto.Proto_util.Traps.pop state.traps with
      | Some (requester, traps) ->
          if requester = ctx.self then
            dispatch ctx { state with traps } ~stamp ~next_seq
          else begin
            ctx.send ~dst:requester (Loan { stamp; next_seq });
            { state with holding = Lent; traps }
          end
      | None ->
          ctx.send
            ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
            (Token { stamp = stamp + 1; next_seq });
          { state with holding = Not_holding }

    let init (ctx : msg Node_intf.ctx) =
      let state =
        {
          last_stamp = 0;
          holding = Not_holding;
          traps = Tr_proto.Proto_util.Traps.empty;
          origin_seq = 0;
          next_expected = 1;
          buffer = IMap.empty;
          log = [];
        }
      in
      if ctx.self = 0 then begin
        ctx.possession ();
        ctx.send ~dst:(Node_intf.succ_node ~n:ctx.n 0) (Token { stamp = 1; next_seq = 1 })
      end;
      state

    let on_request (ctx : msg Node_intf.ctx) state =
      let span = ctx.n / 2 in
      if span < 1 then state
      else begin
        let dst = Node_intf.forward_node ~n:ctx.n ctx.self span in
        ctx.send ~channel:Network.Cheap ~dst
          (Gimme { requester = ctx.self; span; stamp = state.last_stamp });
        state
      end

    let on_message (ctx : msg Node_intf.ctx) state ~src msg =
      match msg with
      | Token { stamp; next_seq } ->
          ctx.possession ();
          let state, next_seq =
            broadcast_pending ctx { state with last_stamp = stamp } ~next_seq
          in
          dispatch ctx state ~stamp ~next_seq
      | Loan { stamp; next_seq } ->
          ctx.possession ();
          let state, next_seq = broadcast_pending ctx state ~next_seq in
          ctx.send ~dst:src (Return { stamp; next_seq });
          state
      | Return { stamp; next_seq } ->
          ctx.possession ();
          let state, next_seq = broadcast_pending ctx state ~next_seq in
          dispatch ctx { state with holding = Not_holding } ~stamp ~next_seq
      | Gimme { requester; span; stamp } ->
          if requester = ctx.self then state
          else begin
            ctx.search_forward ();
            let state =
              { state with
                traps = Tr_proto.Proto_util.Traps.push state.traps requester }
            in
            (match state.holding with
            | Lent -> ()
            | Not_holding ->
                if span >= 2 then begin
                  let jump = span / 2 in
                  let dir = if state.last_stamp >= stamp then jump else -jump in
                  let dst = Node_intf.forward_node ~n:ctx.n ctx.self dir in
                  ctx.send ~channel:Network.Cheap ~dst
                    (Gimme { requester; span = jump; stamp })
                end);
            state
          end
      | Bcast { seq; payload } -> deliver state seq payload

  let on_timer _ctx state ~key:_ = state
end

let protocol : (module Node_intf.PROTOCOL) = (module Impl)
