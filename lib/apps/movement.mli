(** Token movement directives for the hybrid applications.

    The paper's §4.4 observation (Figure 10) is that plain ring rotation
    wins under heavy load — every node has work, so O(1) hops per serve
    beat O(log N) searches — while BinarySearch wins under light load.
    The mutex and total-order applications therefore support {e both}
    movements in one protocol: every token carries the mode it was
    dispatched under, holders consult a caller-supplied directive when
    passing the token on, and requesters suppress their Gimme searches
    while the last token they saw was rotating. An online policy (see
    [Tr_service.Policy]) flips the directive at run time; in-flight
    messages from the previous mode are handled harmlessly by the
    existing trap machinery.

    [park_after] additionally enables the paper's adaptive token {e
    speed}: after that many consecutive idle hops the token parks at its
    current holder instead of burning bandwidth, and is recalled by the
    next search (Search mode only — a rotating token must keep moving,
    since rotation is the only way requesters find it). *)

type mode = Rotate | Search

type directive = {
  mode : mode;
  park_after : int option;
      (** Park the token after this many consecutive idle hops (Search
          mode only). [None] never parks — the seed behaviour. *)
}

val default : directive
(** [{ mode = Search; park_after = None }] — byte-identical to the
    pre-hybrid applications. *)

val mode_to_string : mode -> string
val mode_of_string : string -> mode option
