(** Weighted round-robin scheduling on the rotating token.

    The abstract's third motivating use: the token as a round-robin
    scheduling permit. Each node owns a work queue fed by the simulation
    workload and a {e weight}; one visit of the token lets node [x] run
    up to [weight x] work items (each costing [slot_cost] time while the
    token waits). The rotation guarantees every node a turn per cycle —
    deterministic fairness — while weights skew bandwidth.

    Tests check the proportional-share property: served counts per node
    converge to the weight distribution under saturated queues. *)

open Tr_sim

type msg = Token of { stamp : int }

type state

val make :
  ?weight:(int -> int) -> ?slot_cost:float -> unit -> (module Node_intf.PROTOCOL)
(** [weight] maps a node id to its per-visit quantum (default: all 1 —
    plain round-robin). [slot_cost] is the virtual time one work item
    occupies the resource (default 0.5).
    @raise Invalid_argument at [init] if a weight is non-positive. *)

val protocol : (module Node_intf.PROTOCOL)

val served_this_visit : state -> int
