(** Online summary statistics (Welford's algorithm).

    A [t] accumulates a stream of float observations in O(1) space and
    provides the usual moments plus extrema. All query functions are total:
    on an empty summary they return [nan] (or [0] for {!count}). *)

type t

val create : unit -> t
(** A fresh, empty accumulator. *)

val copy : t -> t
(** Independent copy of the accumulator state. *)

val add : t -> float -> unit
(** [add t x] folds observation [x] into [t]. [nan] observations are
    counted in {!nan_count} but excluded from the moments. *)

val add_many : t -> float list -> unit

val merge : t -> t -> t
(** [merge a b] is a summary equivalent to having observed both streams.
    Neither argument is mutated. *)

val count : t -> int
val nan_count : t -> int
val total : t -> float
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance (n-1 denominator); [nan] if [count t < 2]. *)

val stddev : t -> float
val min : t -> float
val max : t -> float
val last : t -> float

val ci95_halfwidth : t -> float
(** Half-width of a normal-approximation 95% confidence interval for the
    mean ([1.96 * stddev / sqrt n]); [nan] if [count t < 2]. *)

val pp : Format.formatter -> t -> unit
(** Renders like [n=100 mean=4.27 sd=1.13 min=1 max=9]. *)
