type scale = Linear | Log

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let transform = function
  | Linear -> fun v -> Some v
  | Log -> fun v -> if v > 0.0 then Some (log v) else None

let render ?(width = 64) ?(height = 20) ?(x_scale = Linear) ?(y_scale = Linear)
    ?(x_label = "x") ?(y_label = "y") series_list =
  let tx = transform x_scale and ty = transform y_scale in
  let points =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (x, y) ->
            match (tx x, ty y) with
            | Some x', Some y' -> Some (x', y', x, y)
            | _ -> None)
          (Series.points s))
      series_list
  in
  if points = [] then "(empty plot)\n"
  else begin
    let xs = List.map (fun (x, _, _, _) -> x) points in
    let ys = List.map (fun (_, y, _, _) -> y) points in
    let fold f = function [] -> nan | h :: t -> List.fold_left f h t in
    let x_min = fold Float.min xs and x_max = fold Float.max xs in
    let y_min = fold Float.min ys and y_max = fold Float.max ys in
    let raw_xs = List.map (fun (_, _, x, _) -> x) points in
    let raw_ys = List.map (fun (_, _, _, y) -> y) points in
    let rx_min = fold Float.min raw_xs and rx_max = fold Float.max raw_xs in
    let ry_min = fold Float.min raw_ys and ry_max = fold Float.max raw_ys in
    let span lo hi = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
    let x_span = span x_min x_max and y_span = span y_min y_max in
    let grid = Array.make_matrix height width ' ' in
    let place glyph x y =
      let col =
        int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
      in
      let row =
        height - 1
        - int_of_float ((y -. y_min) /. y_span *. float_of_int (height - 1))
      in
      grid.(row).(col) <- glyph
    in
    (* Draw in reverse so that on collisions the earlier (primary)
       series' glyph wins. *)
    let indexed = List.mapi (fun i s -> (i, s)) series_list in
    List.iter
      (fun (i, s) ->
        let glyph = glyphs.(i mod Array.length glyphs) in
        List.iter
          (fun (x, y) ->
            match (tx x, ty y) with
            | Some x', Some y' -> place glyph x' y'
            | _ -> ())
          (Series.points s))
      (List.rev indexed);
    let buffer = Buffer.create ((width + 8) * (height + 4)) in
    Buffer.add_string buffer
      (Printf.sprintf "%s (%s%g .. %g)\n" y_label
         (match y_scale with Log -> "log, " | Linear -> "")
         ry_min ry_max);
    Array.iter
      (fun row ->
        Buffer.add_string buffer "  |";
        Array.iter (Buffer.add_char buffer) row;
        Buffer.add_char buffer '\n')
      grid;
    Buffer.add_string buffer "  +";
    Buffer.add_string buffer (String.make width '-');
    Buffer.add_char buffer '\n';
    Buffer.add_string buffer
      (Printf.sprintf "   %s: %s%g .. %g\n" x_label
         (match x_scale with Log -> "log, " | Linear -> "")
         rx_min rx_max);
    Buffer.add_string buffer "   legend:";
    List.iteri
      (fun i s ->
        Buffer.add_string buffer
          (Printf.sprintf " %c=%s" glyphs.(i mod Array.length glyphs) (Series.name s)))
      series_list;
    Buffer.add_char buffer '\n';
    Buffer.contents buffer
  end

let pp ?width ?height ?x_scale ?y_scale ?x_label ?y_label ppf series_list =
  Format.pp_print_string ppf
    (render ?width ?height ?x_scale ?y_scale ?x_label ?y_label series_list)
