(* The P-squared algorithm (Jain & Chlamtac, CACM 1985): a streaming
   quantile estimate from five markers, O(1) memory and O(1) per
   observation. Marker heights track [min, p/2-ish, p, (1+p)/2-ish, max]
   and are nudged toward their desired positions with parabolic
   (piecewise-quadratic) interpolation, falling back to linear when the
   parabola would break monotonicity. *)

type t = {
  p : float;
  heights : float array; (* q.(0..4), ascending *)
  positions : float array; (* n.(0..4), 1-based marker positions *)
  desired : float array; (* n'.(0..4) *)
  increments : float array; (* dn'.(0..4) *)
  mutable count : int;
}

let create ~p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "P2.create: p outside (0,1)";
  {
    p;
    heights = Array.make 5 0.0;
    positions = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
    desired = [| 1.0; 1.0 +. (2.0 *. p); 1.0 +. (4.0 *. p); 3.0 +. (2.0 *. p); 5.0 |];
    increments = [| 0.0; p /. 2.0; p; (1.0 +. p) /. 2.0; 1.0 |];
    count = 0;
  }

let probability t = t.p
let count t = t.count

(* Parabolic prediction of marker [i] moved by [d] (+1.0 or -1.0). *)
let parabolic t i d =
  let q = t.heights and n = t.positions in
  q.(i)
  +. d
     /. (n.(i + 1) -. n.(i - 1))
     *. (((n.(i) -. n.(i - 1) +. d) *. (q.(i + 1) -. q.(i)) /. (n.(i + 1) -. n.(i)))
        +. ((n.(i + 1) -. n.(i) -. d) *. (q.(i) -. q.(i - 1)) /. (n.(i) -. n.(i - 1))))

let linear t i d =
  let q = t.heights and n = t.positions in
  let j = i + int_of_float d in
  q.(i) +. (d *. (q.(j) -. q.(i)) /. (n.(j) -. n.(i)))

let add t x =
  t.count <- t.count + 1;
  if t.count <= 5 then begin
    (* Bootstrap: insert into the sorted prefix of [heights]. *)
    let k = t.count - 1 in
    t.heights.(k) <- x;
    let i = ref k in
    while !i > 0 && t.heights.(!i - 1) > t.heights.(!i) do
      let tmp = t.heights.(!i - 1) in
      t.heights.(!i - 1) <- t.heights.(!i);
      t.heights.(!i) <- tmp;
      decr i
    done
  end
  else begin
    let q = t.heights and n = t.positions in
    (* Cell index and extreme adjustment. *)
    let k =
      if x < q.(0) then begin
        q.(0) <- x;
        0
      end
      else if x >= q.(4) then begin
        q.(4) <- x;
        3
      end
      else begin
        let k = ref 0 in
        for i = 1 to 3 do
          if x >= q.(i) then k := i
        done;
        !k
      end
    in
    for i = k + 1 to 4 do
      n.(i) <- n.(i) +. 1.0
    done;
    for i = 0 to 4 do
      t.desired.(i) <- t.desired.(i) +. t.increments.(i)
    done;
    (* Nudge the three interior markers toward their desired positions. *)
    for i = 1 to 3 do
      let d = t.desired.(i) -. n.(i) in
      if
        (d >= 1.0 && n.(i + 1) -. n.(i) > 1.0)
        || (d <= -1.0 && n.(i - 1) -. n.(i) < -1.0)
      then begin
        let d = if d >= 0.0 then 1.0 else -1.0 in
        let candidate = parabolic t i d in
        let candidate =
          if q.(i - 1) < candidate && candidate < q.(i + 1) then candidate
          else linear t i d
        in
        q.(i) <- candidate;
        n.(i) <- n.(i) +. d
      end
    done
  end

let estimate t =
  if t.count = 0 then nan
  else if t.count <= 5 then begin
    (* Exact from the sorted bootstrap prefix (type-7 interpolation). *)
    let len = t.count in
    let h = float_of_int (len - 1) *. t.p in
    let lo = int_of_float (Float.floor h) in
    let hi = Stdlib.min (lo + 1) (len - 1) in
    let frac = h -. Float.floor h in
    t.heights.(lo) +. (frac *. (t.heights.(hi) -. t.heights.(lo)))
  end
  else t.heights.(2)

let pp ppf t =
  Format.fprintf ppf "p2(p=%g n=%d est=%.4g)" t.p t.count (estimate t)
