(** Labelled (x, y) series and sweep tables.

    Benchmark sweeps (e.g. "responsiveness vs N for ring and binary search")
    produce one {!t} per protocol; {!Table} aligns several series on their
    shared x values and renders the rows a paper figure plots. *)

type t

val create : name:string -> t
val name : t -> string
val add : t -> x:float -> y:float -> unit
val points : t -> (float * float) list
(** In insertion order. *)

val length : t -> int

val y_at : t -> float -> float option
(** [y_at t x] is the y recorded at exactly [x], if any (last wins). *)

val map_y : t -> f:(float -> float) -> t
(** Fresh series with transformed y values, same name and x's. *)

val pp : Format.formatter -> t -> unit

module Table : sig
  type series = t
  type t

  val of_series : x_label:string -> series list -> t
  (** Columns are the given series; rows are the union of their x values in
      ascending order. Missing cells render as ["-"]. *)

  val pp : Format.formatter -> t -> unit
  (** Fixed-width textual table, header row then one row per x. *)

  val to_csv : t -> string
  (** Comma-separated rendering with the same layout as {!pp}. *)
end
