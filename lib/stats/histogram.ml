type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if bins < 1 then invalid_arg "Histogram.create: bins < 1";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
    total = 0;
  }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    (* Guard against float rounding placing x in a phantom bin. *)
    let i = Stdlib.min i (Array.length t.counts - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let add_many t xs = List.iter (add t) xs
let count t = t.total

let bin_count t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bin_count: index out of range";
  t.counts.(i)

let bin_bounds t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bin_bounds: index out of range";
  let lo_i = t.lo +. (float_of_int i *. t.width) in
  (lo_i, lo_i +. t.width)

let underflow t = t.underflow
let overflow t = t.overflow

let mode_bin t =
  let best = ref (-1) and best_count = ref 0 in
  Array.iteri
    (fun i c ->
      if c > !best_count then begin
        best := i;
        best_count := c
      end)
    t.counts;
  !best

let pp ppf t =
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  if t.underflow > 0 then
    Format.fprintf ppf "  < %-8.4g %6d@\n" t.lo t.underflow;
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo_i, hi_i = bin_bounds t i in
        let bar = String.make (c * 40 / peak) '#' in
        Format.fprintf ppf "  [%-8.4g %-8.4g) %6d %s@\n" lo_i hi_i c bar
      end)
    t.counts;
  if t.overflow > 0 then Format.fprintf ppf "  >=%-8.4g %6d@\n" t.hi t.overflow
