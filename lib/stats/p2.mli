(** Streaming quantile estimation, P-squared algorithm (Jain & Chlamtac,
    CACM 1985).

    A [t] tracks one quantile of a stream in O(1) memory (five markers)
    and O(1) time per observation — the streaming complement to
    {!Quantile}, which is exact but retains every sample. Accuracy is
    typically within a fraction of a percent of the exact quantile for
    smooth distributions once a few hundred samples have been seen; the
    first five observations are stored and answered exactly. *)

type t

val create : p:float -> t
(** Track the [p]-quantile ([0 < p < 1]).
    @raise Invalid_argument outside that range. *)

val add : t -> float -> unit
val count : t -> int

val probability : t -> float
(** The [p] this sketch was created with. *)

val estimate : t -> float
(** Current estimate of the [p]-quantile; [nan] before any observation,
    exact (interpolated) while [count <= 5]. *)

val pp : Format.formatter -> t -> unit
