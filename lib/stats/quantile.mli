(** Exact quantiles over collected samples.

    A [t] retains every observation (O(n) space) and answers arbitrary
    quantile queries by sorting lazily; the sort is cached until the next
    insertion. Suited to simulation post-processing where sample counts are
    bounded by the experiment length. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_many : t -> float list -> unit
val count : t -> int

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1], linear interpolation between closest
    ranks (type-7 estimator, as in R and NumPy). [nan] on an empty [t].
    @raise Invalid_argument if [q] is outside [0,1]. *)

val median : t -> float
val p90 : t -> float
val p99 : t -> float
val iqr : t -> float
(** Interquartile range, [quantile 0.75 - quantile 0.25]. *)

val to_sorted_array : t -> float array
(** Snapshot of the samples in ascending order. *)

val pp : Format.formatter -> t -> unit
