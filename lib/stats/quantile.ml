type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { samples = Array.make 16 0.0; len = 0; sorted = true }

let ensure_capacity t =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * Array.length t.samples) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end

let add t x =
  ensure_capacity t;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let add_many t xs = List.iter (add t) xs
let count t = t.len

let sort_in_place t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.len in
    Array.sort Float.compare live;
    Array.blit live 0 t.samples 0 t.len;
    t.sorted <- true
  end

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Quantile.quantile: q outside [0,1]";
  if t.len = 0 then nan
  else begin
    sort_in_place t;
    (* Type-7: h = (n-1) q; interpolate between floor(h) and ceil(h). *)
    let h = float_of_int (t.len - 1) *. q in
    let lo = int_of_float (Float.floor h) in
    let hi = Stdlib.min (lo + 1) (t.len - 1) in
    let frac = h -. Float.floor h in
    t.samples.(lo) +. (frac *. (t.samples.(hi) -. t.samples.(lo)))
  end

let median t = quantile t 0.5
let p90 t = quantile t 0.9
let p99 t = quantile t 0.99
let iqr t = quantile t 0.75 -. quantile t 0.25

let to_sorted_array t =
  sort_in_place t;
  Array.sub t.samples 0 t.len

let pp ppf t =
  if t.len = 0 then Format.fprintf ppf "quantiles(n=0)"
  else
    Format.fprintf ppf "quantiles(n=%d p50=%.4g p90=%.4g p99=%.4g)" t.len
      (median t) (p90 t) (p99 t)
