(** Fixed-width binned histograms.

    Bins partition [\[lo, hi)] into [bins] equal intervals; observations
    below [lo] or at/above [hi] land in dedicated underflow/overflow
    counters so no sample is silently dropped. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** @raise Invalid_argument if [hi <= lo] or [bins < 1]. *)

val add : t -> float -> unit
val add_many : t -> float list -> unit
val count : t -> int
(** Total observations including under/overflow. *)

val bin_count : t -> int -> int
(** [bin_count t i] observations in bin [i]; bins are indexed from 0.
    @raise Invalid_argument on an out-of-range index. *)

val bin_bounds : t -> int -> float * float
(** Half-open bounds [(lo_i, hi_i)] of bin [i]. *)

val underflow : t -> int
val overflow : t -> int

val mode_bin : t -> int
(** Index of the fullest bin (first one on ties); [-1] if all bins empty. *)

val pp : Format.formatter -> t -> unit
(** Multi-line ASCII bar rendering, one row per non-empty bin. *)
