type t = {
  mutable count : int;
  mutable nan_count : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable total : float;
  mutable min : float;
  mutable max : float;
  mutable last : float;
}

let create () =
  {
    count = 0;
    nan_count = 0;
    mean = 0.0;
    m2 = 0.0;
    total = 0.0;
    min = infinity;
    max = neg_infinity;
    last = nan;
  }

let copy t =
  {
    count = t.count;
    nan_count = t.nan_count;
    mean = t.mean;
    m2 = t.m2;
    total = t.total;
    min = t.min;
    max = t.max;
    last = t.last;
  }

let add t x =
  if Float.is_nan x then t.nan_count <- t.nan_count + 1
  else begin
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    t.last <- x;
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    let delta2 = x -. t.mean in
    t.m2 <- t.m2 +. (delta *. delta2)
  end

let add_many t xs = List.iter (add t) xs

let merge a b =
  if a.count = 0 then copy b
  else if b.count = 0 then copy a
  else begin
    let n_a = float_of_int a.count and n_b = float_of_int b.count in
    let n = n_a +. n_b in
    let delta = b.mean -. a.mean in
    {
      count = a.count + b.count;
      nan_count = a.nan_count + b.nan_count;
      mean = a.mean +. (delta *. n_b /. n);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. n_a *. n_b /. n);
      total = a.total +. b.total;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      last = b.last;
    }
  end

let count t = t.count
let nan_count t = t.nan_count
let total t = t.total
let mean t = if t.count = 0 then nan else t.mean

let variance t =
  if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)

let stddev t = sqrt (variance t)
let min t = if t.count = 0 then nan else t.min
let max t = if t.count = 0 then nan else t.max
let last t = t.last

let ci95_halfwidth t =
  if t.count < 2 then nan
  else 1.96 *. stddev t /. sqrt (float_of_int t.count)

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.count
      (mean t) (stddev t) (min t) (max t)
