(** ASCII line plots for sweep series.

    Renders a set of {!Series} into a fixed-size character grid — enough
    to eyeball the shapes the paper's figures show (saturation, crossover,
    log-vs-linear growth) straight from the bench output. Each series gets
    a distinct glyph; colliding points show the glyph of the later series
    in the argument list. *)

type scale = Linear | Log
(** Log scales require strictly positive values on that axis; offending
    points are skipped. *)

val render :
  ?width:int ->
  ?height:int ->
  ?x_scale:scale ->
  ?y_scale:scale ->
  ?x_label:string ->
  ?y_label:string ->
  Series.t list ->
  string
(** Defaults: 64×20 grid, linear axes. Empty input or all-empty series
    yield a one-line placeholder. Output includes a legend line mapping
    glyphs to series names and min/max annotations on both axes. *)

val pp :
  ?width:int ->
  ?height:int ->
  ?x_scale:scale ->
  ?y_scale:scale ->
  ?x_label:string ->
  ?y_label:string ->
  Format.formatter ->
  Series.t list ->
  unit
