type t = { name : string; mutable rev_points : (float * float) list }

let create ~name = { name; rev_points = [] }
let name t = t.name
let add t ~x ~y = t.rev_points <- (x, y) :: t.rev_points
let points t = List.rev t.rev_points
let length t = List.length t.rev_points

let y_at t x =
  (* rev_points holds the newest first, so the first hit is the last added. *)
  let rec find = function
    | [] -> None
    | (px, py) :: rest -> if px = x then Some py else find rest
  in
  find t.rev_points

let map_y t ~f =
  {
    name = t.name;
    rev_points = List.map (fun (x, y) -> (x, f y)) t.rev_points;
  }

let pp ppf t =
  Format.fprintf ppf "%s:" t.name;
  List.iter (fun (x, y) -> Format.fprintf ppf " (%g, %g)" x y) (points t)

module Table = struct
  type series = t
  type nonrec t = { x_label : string; columns : series list; xs : float list }

  let of_series ~x_label columns =
    let module FS = Set.Make (Float) in
    let xs =
      List.fold_left
        (fun acc s ->
          List.fold_left (fun acc (x, _) -> FS.add x acc) acc (points s))
        FS.empty columns
    in
    { x_label; columns; xs = FS.elements xs }

  let cell s x =
    match y_at s x with None -> "-" | Some y -> Format.asprintf "%.4g" y

  let render ~sep ~pad t =
    let buffer = Buffer.create 256 in
    let widths =
      List.map
        (fun s ->
          List.fold_left
            (fun w x -> Stdlib.max w (String.length (cell s x)))
            (String.length (name s))
            t.xs)
        t.columns
    in
    let x_width =
      List.fold_left
        (fun w x -> Stdlib.max w (String.length (Format.asprintf "%g" x)))
        (String.length t.x_label)
        t.xs
    in
    let emit w s =
      Buffer.add_string buffer s;
      if pad then
        Buffer.add_string buffer (String.make (Stdlib.max 0 (w - String.length s)) ' ')
    in
    emit x_width t.x_label;
    List.iter2
      (fun s w ->
        Buffer.add_string buffer sep;
        emit w (name s))
      t.columns widths;
    Buffer.add_char buffer '\n';
    List.iter
      (fun x ->
        emit x_width (Format.asprintf "%g" x);
        List.iter2
          (fun s w ->
            Buffer.add_string buffer sep;
            emit w (cell s x))
          t.columns widths;
        Buffer.add_char buffer '\n')
      t.xs;
    Buffer.contents buffer

  let pp ppf t = Format.pp_print_string ppf (render ~sep:"  " ~pad:true t)
  let to_csv t = render ~sep:"," ~pad:false t
end
