(** Wire codecs for every protocol in [lib/proto/], plus the pairing of
    each codec with its (typed) protocol module.

    Encodings are derived mechanically from each protocol's [msg]
    variant: a one-byte constructor tag followed by the fields in
    declaration order (zigzag varints for ints, length-prefixed
    sequences). Generation and stamp counters round-trip exactly.

    [binsearch] and [binsearch-throttle] share one message type and hence
    one codec; the two cleanup variants have distinct message types and
    distinct codecs. *)

open Tr_sim

val ring : Tr_proto.Ring.msg Codec.t
val tree : Tr_proto.Tree.msg Codec.t
val suzuki_kasami : Tr_proto.Suzuki_kasami.msg Codec.t
val seq_search : Tr_proto.Seq_search.msg Codec.t
val binsearch : Tr_proto.Binsearch.msg Codec.t
val directed : Tr_proto.Directed.msg Codec.t
val cleanup_rotation : Tr_proto.Cleanup.rotation_msg Codec.t
val cleanup_inverse : Tr_proto.Cleanup.inverse_msg Codec.t
val adaptive : Tr_proto.Adaptive.msg Codec.t
val pushpull : Tr_proto.Pushpull.msg Codec.t
val failure : Tr_proto.Failure.msg Codec.t
val failsafe_search : Tr_proto.Failsafe_search.msg Codec.t
val membership : Tr_proto.Membership.msg Codec.t
val random_walk : Tr_proto.Random_walk.msg Codec.t

(** A protocol module packaged with its codec, the message type hidden
    but shared between the two — everything the live runtime needs to
    host a protocol. *)
type packed =
  | Packed :
      (module Node_intf.PROTOCOL with type msg = 'm) * 'm Codec.t
      -> packed

val all : packed list
(** One entry per registry protocol (15 of them). *)

val find : string -> packed option
(** Look up by registry protocol name (e.g. ["binsearch-throttle"]). *)

val find_exn : string -> packed
val names : string list
