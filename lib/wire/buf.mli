(** Byte-level primitives shared by every wire codec.

    Encoding appends to a standard [Buffer.t]; decoding walks a bounded
    cursor over an immutable string and returns [result] — decoders never
    raise on malformed or truncated input, which is what lets the frame
    layer resynchronise after garbage instead of tearing the connection
    down.

    Integers travel as LEB128 varints. Signed fields use the zigzag
    mapping first so small negative values stay short; all [int] values
    representable in OCaml (63-bit) round-trip exactly — generation and
    stamp counters are preserved bit-for-bit. *)

type error =
  | Truncated  (** Input ended mid-value; more bytes may complete it. *)
  | Malformed of string  (** Structurally invalid; more bytes won't help. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** {1 Encoding} *)

module Enc : sig
  val byte : Buffer.t -> int -> unit
  (** Low 8 bits of the argument. *)

  val uvarint : Buffer.t -> int -> unit
  (** LEB128; requires a non-negative argument. *)

  val int : Buffer.t -> int -> unit
  (** Zigzag + LEB128: any OCaml int, negative included. *)

  val bool : Buffer.t -> bool -> unit

  val option : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit
  (** Presence byte, then the payload when present. *)

  val list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit
  (** Length uvarint, then the elements in order. *)

  val int_array : Buffer.t -> int array -> unit
  (** Length uvarint, then zigzag elements. *)

  val string : Buffer.t -> string -> unit
  (** Length uvarint, then the raw bytes. *)
end

(** {1 Decoding} *)

module Dec : sig
  type t
  (** A cursor over [data.[pos .. limit-1]]. Reads advance [pos]; a failed
      read leaves the cursor position unspecified, so callers abandon the
      cursor on [Error]. *)

  val of_string : ?pos:int -> ?limit:int -> string -> t

  val of_bytes : ?pos:int -> ?limit:int -> bytes -> t
  (** Zero-copy cursor over a caller-owned byte window (e.g. a frame
      decoder's buffer). The caller must not mutate
      [data.[pos .. limit-1]] while the cursor is in use. *)

  val pos : t -> int
  val remaining : t -> int

  val byte : t -> (int, error) result
  val uvarint : t -> (int, error) result
  val int : t -> (int, error) result
  val bool : t -> (bool, error) result
  val option : (t -> ('a, error) result) -> t -> ('a option, error) result
  val list : (t -> ('a, error) result) -> t -> ('a list, error) result
  val int_array : t -> (int array, error) result
  val string : t -> (string, error) result

  val expect_end : t -> (unit, error) result
  (** [Ok] iff the cursor consumed every byte up to its limit — trailing
      junk inside a frame is a decode error, not padding. *)

  val ( let* ) : ('a, error) result -> ('a -> ('b, error) result) -> ('b, error) result
end
