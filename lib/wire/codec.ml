type 'msg t = {
  name : string;
  key : int;
  version : int;
  encode_msg : Buffer.t -> 'msg -> unit;
  decode_msg : Buf.Dec.t -> ('msg, Buf.error) result;
}

type 'msg envelope = {
  src : int;
  channel : Tr_sim.Network.channel;
  msg : 'msg;
}

let channel_byte = function
  | Tr_sim.Network.Reliable -> 0
  | Tr_sim.Network.Cheap -> 1

let channel_of_byte = function
  | 0 -> Ok Tr_sim.Network.Reliable
  | 1 -> Ok Tr_sim.Network.Cheap
  | b -> Error (Buf.Malformed (Printf.sprintf "channel byte %#x" b))

let encode_envelope codec ~src ~channel msg =
  let payload = Buffer.create 32 in
  Buf.Enc.uvarint payload codec.key;
  Buf.Enc.byte payload codec.version;
  Buf.Enc.uvarint payload src;
  Buf.Enc.byte payload (channel_byte channel);
  codec.encode_msg payload msg;
  Frame.to_string (Buffer.contents payload)

let decode_payload codec dec =
  let open Buf.Dec in
  let* key = uvarint dec in
  if key <> codec.key then
    Error
      (Buf.Malformed
         (Printf.sprintf "codec key %d, expected %d (%s)" key codec.key
            codec.name))
  else
    let* v = byte dec in
    if v <> codec.version then
      Error
        (Buf.Malformed
           (Printf.sprintf "codec version %d, expected %d (%s)" v codec.version
              codec.name))
    else
      let* src = uvarint dec in
      let* cb = byte dec in
      let* channel = channel_of_byte cb in
      let* msg = codec.decode_msg dec in
      let* () = expect_end dec in
      Ok { src; channel; msg }

let decode_envelope codec payload =
  decode_payload codec (Buf.Dec.of_string payload)
