type 'msg t = {
  name : string;
  key : int;
  version : int;
  encode_msg : Buffer.t -> 'msg -> unit;
  decode_msg : Buf.Dec.t -> ('msg, Buf.error) result;
}

type 'msg envelope = {
  src : int;
  channel : Tr_sim.Network.channel;
  msg : 'msg;
}

let channel_byte = function
  | Tr_sim.Network.Reliable -> 0
  | Tr_sim.Network.Cheap -> 1

let channel_of_byte = function
  | 0 -> Ok Tr_sim.Network.Reliable
  | 1 -> Ok Tr_sim.Network.Cheap
  | b -> Error (Buf.Malformed (Printf.sprintf "channel byte %#x" b))

let encode_payload codec payload ~src ~channel msg =
  Buf.Enc.uvarint payload codec.key;
  Buf.Enc.byte payload codec.version;
  Buf.Enc.uvarint payload src;
  Buf.Enc.byte payload (channel_byte channel);
  codec.encode_msg payload msg

(* One scratch pair per sending context: the payload is built first
   (its length prefix must precede it on the wire), then framed into
   [frame] by blitting Buffer-to-Buffer. Steady-state sends touch no
   fresh buffers and produce no intermediate strings. *)
type scratch = { payload : Buffer.t; frame : Buffer.t }

let scratch () = { payload = Buffer.create 256; frame = Buffer.create 256 }

let encode_frame scratch codec ~src ~channel msg =
  Buffer.clear scratch.payload;
  encode_payload codec scratch.payload ~src ~channel msg;
  Buffer.clear scratch.frame;
  Frame.encode_buffer scratch.frame scratch.payload;
  scratch.frame

let encode_envelope codec ~src ~channel msg =
  let payload = Buffer.create 32 in
  encode_payload codec payload ~src ~channel msg;
  Frame.to_string (Buffer.contents payload)

(* Direct match chains, not [let*]: the bind operator costs a closure
   per step, and this runs once per received frame. *)
let decode_payload codec dec =
  match Buf.Dec.uvarint dec with
  | Error _ as e -> e
  | Ok key when key <> codec.key ->
      Error
        (Buf.Malformed
           (Printf.sprintf "codec key %d, expected %d (%s)" key codec.key
              codec.name))
  | Ok _ -> (
      match Buf.Dec.byte dec with
      | Error _ as e -> e
      | Ok v when v <> codec.version ->
          Error
            (Buf.Malformed
               (Printf.sprintf "codec version %d, expected %d (%s)" v
                  codec.version codec.name))
      | Ok _ -> (
          match Buf.Dec.uvarint dec with
          | Error _ as e -> e
          | Ok src -> (
              match Buf.Dec.byte dec with
              | Error _ as e -> e
              | Ok cb -> (
                  match channel_of_byte cb with
                  | Error _ as e -> e
                  | Ok channel -> (
                      match codec.decode_msg dec with
                      | Error _ as e -> e
                      | Ok msg -> (
                          match Buf.Dec.expect_end dec with
                          | Error _ as e -> e
                          | Ok () -> Ok { src; channel; msg }))))))

let decode_envelope codec payload =
  decode_payload codec (Buf.Dec.of_string payload)

let decode_view codec (v : Frame.view) =
  decode_payload codec
    (Buf.Dec.of_bytes v.Frame.buf ~pos:v.Frame.off ~limit:(v.Frame.off + v.Frame.len))
