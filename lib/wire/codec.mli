(** A wire codec for one protocol's message type.

    Each protocol in [lib/proto/] gets a codec derived from its [msg]
    variant (see {!Codecs}); the live runtime pairs the codec with the
    protocol module and ships every [ctx.send] through it. Generation and
    stamp counters travel as zigzag varints, so they are preserved
    exactly — a live token carries the same integers a simulated one
    does.

    The envelope wraps a message with its routing metadata
    ([src] node id and delivery channel) and the codec's [key], a stable
    wire identifier that catches a node decoding frames from a cluster
    running a different protocol. *)

type 'msg t = {
  name : string;  (** Protocol name, matching {!Tr_sim} registry usage. *)
  key : int;  (** Stable wire id for cross-protocol mismatch detection. *)
  version : int;  (** Bumped when the message encoding changes shape. *)
  encode_msg : Buffer.t -> 'msg -> unit;
  decode_msg : Buf.Dec.t -> ('msg, Buf.error) result;
}

type 'msg envelope = {
  src : int;
  channel : Tr_sim.Network.channel;
  msg : 'msg;
}

val encode_envelope :
  'msg t -> src:int -> channel:Tr_sim.Network.channel -> 'msg -> string
(** A complete frame (header included) ready for a transport. Allocates
    per call; the hot path uses {!encode_frame} with a reused scratch. *)

type scratch
(** Reusable encode buffers (payload + frame). One per sending context;
    not safe to share across domains. *)

val scratch : unit -> scratch

val encode_frame :
  scratch ->
  'msg t ->
  src:int ->
  channel:Tr_sim.Network.channel ->
  'msg ->
  Buffer.t
(** Encode one complete frame into the scratch and return the buffer
    holding it. The contents are only valid until the next
    [encode_frame] on the same scratch — the transport blits them out
    immediately ({!Transport.send_frame}). Steady-state calls allocate
    nothing beyond what the message encoder itself allocates. *)

val decode_envelope : 'msg t -> string -> ('msg envelope, Buf.error) result
(** Decode one frame {e payload} (as produced by {!Frame.Decoder.next}).
    Never raises; trailing bytes, wrong codec key or version, and
    truncation all come back as [Error]. *)

val decode_view : 'msg t -> Frame.view -> ('msg envelope, Buf.error) result
(** As {!decode_envelope}, reading directly from a borrowed frame view
    (no payload copy). The view must stay valid for the duration of the
    call, which never outlives it. *)

val decode_payload : 'msg t -> Buf.Dec.t -> ('msg envelope, Buf.error) result
(** As {!decode_envelope}, over an existing cursor. *)
