open Tr_sim

let make_codec ~name ~key ~version encode_msg decode_msg : _ Codec.t =
  { Codec.name; key; version; encode_msg; decode_msg }

let bad_tag codec tag =
  Error (Buf.Malformed (Printf.sprintf "%s: unknown message tag %#x" codec tag))

open Buf.Dec

(* ---------------- ring ---------------- *)

let ring =
  let open Tr_proto.Ring in
  make_codec ~name:"ring" ~key:1 ~version:1
    (fun b (Token { stamp }) ->
      Buf.Enc.byte b 0;
      Buf.Enc.int b stamp)
    (* Match chains, not [let*]: the bind closure would allocate on
       every token hop, and this is the loopback benchmark's message. *)
    (fun d ->
      match byte d with
      | Ok 0 -> (
          match int d with
          | Ok stamp -> Ok (Token { stamp })
          | Error _ as e -> e)
      | Ok t -> bad_tag "ring" t
      | Error _ as e -> e)

(* ---------------- tree ---------------- *)

let tree =
  let open Tr_proto.Tree in
  make_codec ~name:"tree" ~key:2 ~version:1
    (fun b msg ->
      match msg with Token -> Buf.Enc.byte b 0 | Request -> Buf.Enc.byte b 1)
    (fun d ->
      let* tag = byte d in
      match tag with
      | 0 -> Ok Token
      | 1 -> Ok Request
      | t -> bad_tag "tree" t)

(* ---------------- suzuki-kasami ---------------- *)

let suzuki_kasami =
  let open Tr_proto.Suzuki_kasami in
  make_codec ~name:"suzuki-kasami" ~key:3 ~version:1
    (fun b msg ->
      match msg with
      | Request { requester; seq } ->
          Buf.Enc.byte b 0;
          Buf.Enc.int b requester;
          Buf.Enc.int b seq
      | Token { ln; queue } ->
          Buf.Enc.byte b 1;
          Buf.Enc.int_array b ln;
          Buf.Enc.list Buf.Enc.int b queue)
    (fun d ->
      let* tag = byte d in
      match tag with
      | 0 ->
          let* requester = int d in
          let* seq = int d in
          Ok (Request { requester; seq })
      | 1 ->
          let* ln = int_array d in
          let* queue = list int d in
          Ok (Token { ln; queue })
      | t -> bad_tag "suzuki-kasami" t)

(* ---------------- seq-search ---------------- *)

let seq_search =
  let open Tr_proto.Seq_search in
  make_codec ~name:"seq-search" ~key:4 ~version:1
    (fun b msg ->
      match msg with
      | Token { stamp } ->
          Buf.Enc.byte b 0;
          Buf.Enc.int b stamp
      | Loan { stamp } ->
          Buf.Enc.byte b 1;
          Buf.Enc.int b stamp
      | Return { stamp } ->
          Buf.Enc.byte b 2;
          Buf.Enc.int b stamp
      | Gimme { requester; ttl } ->
          Buf.Enc.byte b 3;
          Buf.Enc.int b requester;
          Buf.Enc.int b ttl)
    (fun d ->
      let* tag = byte d in
      match tag with
      | 0 ->
          let* stamp = int d in
          Ok (Token { stamp })
      | 1 ->
          let* stamp = int d in
          Ok (Loan { stamp })
      | 2 ->
          let* stamp = int d in
          Ok (Return { stamp })
      | 3 ->
          let* requester = int d in
          let* ttl = int d in
          Ok (Gimme { requester; ttl })
      | t -> bad_tag "seq-search" t)

(* ---------------- binsearch (shared with binsearch-throttle) -------- *)

let binsearch =
  let open Tr_proto.Binsearch in
  make_codec ~name:"binsearch" ~key:5 ~version:1
    (fun b msg ->
      match msg with
      | Token { stamp } ->
          Buf.Enc.byte b 0;
          Buf.Enc.int b stamp
      | Loan { stamp } ->
          Buf.Enc.byte b 1;
          Buf.Enc.int b stamp
      | Return { stamp } ->
          Buf.Enc.byte b 2;
          Buf.Enc.int b stamp
      | Gimme { requester; span; stamp } ->
          Buf.Enc.byte b 3;
          Buf.Enc.int b requester;
          Buf.Enc.int b span;
          Buf.Enc.int b stamp)
    (fun d ->
      let* tag = byte d in
      match tag with
      | 0 ->
          let* stamp = int d in
          Ok (Token { stamp })
      | 1 ->
          let* stamp = int d in
          Ok (Loan { stamp })
      | 2 ->
          let* stamp = int d in
          Ok (Return { stamp })
      | 3 ->
          let* requester = int d in
          let* span = int d in
          let* stamp = int d in
          Ok (Gimme { requester; span; stamp })
      | t -> bad_tag "binsearch" t)

(* ---------------- directed ---------------- *)

let directed =
  let open Tr_proto.Directed in
  make_codec ~name:"directed" ~key:6 ~version:1
    (fun b msg ->
      match msg with
      | Token { stamp } ->
          Buf.Enc.byte b 0;
          Buf.Enc.int b stamp
      | Loan { stamp } ->
          Buf.Enc.byte b 1;
          Buf.Enc.int b stamp
      | Return { stamp } ->
          Buf.Enc.byte b 2;
          Buf.Enc.int b stamp
      | Probe { requester } ->
          Buf.Enc.byte b 3;
          Buf.Enc.int b requester
      | Reply { stamp } ->
          Buf.Enc.byte b 4;
          Buf.Enc.int b stamp)
    (fun d ->
      let* tag = byte d in
      match tag with
      | 0 ->
          let* stamp = int d in
          Ok (Token { stamp })
      | 1 ->
          let* stamp = int d in
          Ok (Loan { stamp })
      | 2 ->
          let* stamp = int d in
          Ok (Return { stamp })
      | 3 ->
          let* requester = int d in
          Ok (Probe { requester })
      | 4 ->
          let* stamp = int d in
          Ok (Reply { stamp })
      | t -> bad_tag "directed" t)

(* ---------------- cleanup (rotation) ---------------- *)

let cleanup_rotation =
  let open Tr_proto.Cleanup in
  make_codec ~name:"binsearch-gc-rotation" ~key:7 ~version:1
    (fun b msg ->
      match msg with
      | RToken { stamp; satisfied } ->
          Buf.Enc.byte b 0;
          Buf.Enc.int b stamp;
          Buf.Enc.int_array b satisfied
      | RLoan { stamp; satisfied } ->
          Buf.Enc.byte b 1;
          Buf.Enc.int b stamp;
          Buf.Enc.int_array b satisfied
      | RReturn { stamp; satisfied } ->
          Buf.Enc.byte b 2;
          Buf.Enc.int b stamp;
          Buf.Enc.int_array b satisfied
      | RGimme { requester; seq; span; stamp } ->
          Buf.Enc.byte b 3;
          Buf.Enc.int b requester;
          Buf.Enc.int b seq;
          Buf.Enc.int b span;
          Buf.Enc.int b stamp)
    (fun d ->
      let* tag = byte d in
      match tag with
      | 0 ->
          let* stamp = int d in
          let* satisfied = int_array d in
          Ok (RToken { stamp; satisfied })
      | 1 ->
          let* stamp = int d in
          let* satisfied = int_array d in
          Ok (RLoan { stamp; satisfied })
      | 2 ->
          let* stamp = int d in
          let* satisfied = int_array d in
          Ok (RReturn { stamp; satisfied })
      | 3 ->
          let* requester = int d in
          let* seq = int d in
          let* span = int d in
          let* stamp = int d in
          Ok (RGimme { requester; seq; span; stamp })
      | t -> bad_tag "binsearch-gc-rotation" t)

(* ---------------- cleanup (inverse) ---------------- *)

let cleanup_inverse =
  let open Tr_proto.Cleanup in
  make_codec ~name:"binsearch-gc-inverse" ~key:8 ~version:1
    (fun b msg ->
      match msg with
      | IToken { stamp } ->
          Buf.Enc.byte b 0;
          Buf.Enc.int b stamp
      | ILoanVia { stamp; requester; trail } ->
          Buf.Enc.byte b 1;
          Buf.Enc.int b stamp;
          Buf.Enc.int b requester;
          Buf.Enc.list Buf.Enc.int b trail
      | IReturn { stamp } ->
          Buf.Enc.byte b 2;
          Buf.Enc.int b stamp
      | IGimme { requester; span; stamp; trail } ->
          Buf.Enc.byte b 3;
          Buf.Enc.int b requester;
          Buf.Enc.int b span;
          Buf.Enc.int b stamp;
          Buf.Enc.list Buf.Enc.int b trail)
    (fun d ->
      let* tag = byte d in
      match tag with
      | 0 ->
          let* stamp = int d in
          Ok (IToken { stamp })
      | 1 ->
          let* stamp = int d in
          let* requester = int d in
          let* trail = list int d in
          Ok (ILoanVia { stamp; requester; trail })
      | 2 ->
          let* stamp = int d in
          Ok (IReturn { stamp })
      | 3 ->
          let* requester = int d in
          let* span = int d in
          let* stamp = int d in
          let* trail = list int d in
          Ok (IGimme { requester; span; stamp; trail })
      | t -> bad_tag "binsearch-gc-inverse" t)

(* ---------------- adaptive ---------------- *)

let adaptive =
  let open Tr_proto.Adaptive in
  make_codec ~name:"adaptive" ~key:9 ~version:1
    (fun b msg ->
      match msg with
      | Token { stamp; idle_hops } ->
          Buf.Enc.byte b 0;
          Buf.Enc.int b stamp;
          Buf.Enc.int b idle_hops
      | Loan { stamp } ->
          Buf.Enc.byte b 1;
          Buf.Enc.int b stamp
      | Return { stamp } ->
          Buf.Enc.byte b 2;
          Buf.Enc.int b stamp
      | Gimme { requester; span; stamp } ->
          Buf.Enc.byte b 3;
          Buf.Enc.int b requester;
          Buf.Enc.int b span;
          Buf.Enc.int b stamp)
    (fun d ->
      let* tag = byte d in
      match tag with
      | 0 ->
          let* stamp = int d in
          let* idle_hops = int d in
          Ok (Token { stamp; idle_hops })
      | 1 ->
          let* stamp = int d in
          Ok (Loan { stamp })
      | 2 ->
          let* stamp = int d in
          Ok (Return { stamp })
      | 3 ->
          let* requester = int d in
          let* span = int d in
          let* stamp = int d in
          Ok (Gimme { requester; span; stamp })
      | t -> bad_tag "adaptive" t)

(* ---------------- pushpull ---------------- *)

let pushpull =
  let open Tr_proto.Pushpull in
  make_codec ~name:"pushpull" ~key:10 ~version:1
    (fun b msg ->
      match msg with
      | Token { stamp } ->
          Buf.Enc.byte b 0;
          Buf.Enc.int b stamp
      | Loan { stamp } ->
          Buf.Enc.byte b 1;
          Buf.Enc.int b stamp
      | Return { stamp } ->
          Buf.Enc.byte b 2;
          Buf.Enc.int b stamp
      | Gimme { requester; span; stamp } ->
          Buf.Enc.byte b 3;
          Buf.Enc.int b requester;
          Buf.Enc.int b span;
          Buf.Enc.int b stamp
      | Probe { holder; ttl } ->
          Buf.Enc.byte b 4;
          Buf.Enc.int b holder;
          Buf.Enc.int b ttl
      | Want { requester } ->
          Buf.Enc.byte b 5;
          Buf.Enc.int b requester)
    (fun d ->
      let* tag = byte d in
      match tag with
      | 0 ->
          let* stamp = int d in
          Ok (Token { stamp })
      | 1 ->
          let* stamp = int d in
          Ok (Loan { stamp })
      | 2 ->
          let* stamp = int d in
          Ok (Return { stamp })
      | 3 ->
          let* requester = int d in
          let* span = int d in
          let* stamp = int d in
          Ok (Gimme { requester; span; stamp })
      | 4 ->
          let* holder = int d in
          let* ttl = int d in
          Ok (Probe { holder; ttl })
      | 5 ->
          let* requester = int d in
          Ok (Want { requester })
      | t -> bad_tag "pushpull" t)

(* ---------------- ring-failsafe ---------------- *)

let failure =
  let open Tr_proto.Failure in
  make_codec ~name:"ring-failsafe" ~key:11 ~version:1
    (fun b msg ->
      match msg with
      | Token { gen; stamp } ->
          Buf.Enc.byte b 0;
          Buf.Enc.int b gen;
          Buf.Enc.int b stamp
      | Ack { gen; stamp } ->
          Buf.Enc.byte b 1;
          Buf.Enc.int b gen;
          Buf.Enc.int b stamp
      | WhoHas { initiator } ->
          Buf.Enc.byte b 2;
          Buf.Enc.int b initiator
      | Status { stamp; gen } ->
          Buf.Enc.byte b 3;
          Buf.Enc.int b stamp;
          Buf.Enc.int b gen
      | Regenerate { gen } ->
          Buf.Enc.byte b 4;
          Buf.Enc.int b gen)
    (fun d ->
      let* tag = byte d in
      match tag with
      | 0 ->
          let* gen = int d in
          let* stamp = int d in
          Ok (Token { gen; stamp })
      | 1 ->
          let* gen = int d in
          let* stamp = int d in
          Ok (Ack { gen; stamp })
      | 2 ->
          let* initiator = int d in
          Ok (WhoHas { initiator })
      | 3 ->
          let* stamp = int d in
          let* gen = int d in
          Ok (Status { stamp; gen })
      | 4 ->
          let* gen = int d in
          Ok (Regenerate { gen })
      | t -> bad_tag "ring-failsafe" t)

(* ---------------- binsearch-failsafe ---------------- *)

let failsafe_search =
  let open Tr_proto.Failsafe_search in
  make_codec ~name:"binsearch-failsafe" ~key:12 ~version:1
    (fun b msg ->
      match msg with
      | Token { gen; stamp } ->
          Buf.Enc.byte b 0;
          Buf.Enc.int b gen;
          Buf.Enc.int b stamp
      | Ack { gen; stamp } ->
          Buf.Enc.byte b 1;
          Buf.Enc.int b gen;
          Buf.Enc.int b stamp
      | Loan { gen; stamp } ->
          Buf.Enc.byte b 2;
          Buf.Enc.int b gen;
          Buf.Enc.int b stamp
      | Return { gen; stamp } ->
          Buf.Enc.byte b 3;
          Buf.Enc.int b gen;
          Buf.Enc.int b stamp
      | Gimme { requester; span; stamp } ->
          Buf.Enc.byte b 4;
          Buf.Enc.int b requester;
          Buf.Enc.int b span;
          Buf.Enc.int b stamp
      | WhoHas { initiator } ->
          Buf.Enc.byte b 5;
          Buf.Enc.int b initiator
      | Status { gen; stamp } ->
          Buf.Enc.byte b 6;
          Buf.Enc.int b gen;
          Buf.Enc.int b stamp
      | Regenerate { gen } ->
          Buf.Enc.byte b 7;
          Buf.Enc.int b gen)
    (fun d ->
      let* tag = byte d in
      match tag with
      | 0 ->
          let* gen = int d in
          let* stamp = int d in
          Ok (Token { gen; stamp })
      | 1 ->
          let* gen = int d in
          let* stamp = int d in
          Ok (Ack { gen; stamp })
      | 2 ->
          let* gen = int d in
          let* stamp = int d in
          Ok (Loan { gen; stamp })
      | 3 ->
          let* gen = int d in
          let* stamp = int d in
          Ok (Return { gen; stamp })
      | 4 ->
          let* requester = int d in
          let* span = int d in
          let* stamp = int d in
          Ok (Gimme { requester; span; stamp })
      | 5 ->
          let* initiator = int d in
          Ok (WhoHas { initiator })
      | 6 ->
          let* gen = int d in
          let* stamp = int d in
          Ok (Status { gen; stamp })
      | 7 ->
          let* gen = int d in
          Ok (Regenerate { gen })
      | t -> bad_tag "binsearch-failsafe" t)

(* ---------------- ring-membership ---------------- *)

let membership =
  let open Tr_proto.Membership in
  make_codec ~name:"ring-membership" ~key:13 ~version:1
    (fun b msg ->
      match msg with
      | Token { stamp; pred; bypass } ->
          Buf.Enc.byte b 0;
          Buf.Enc.int b stamp;
          Buf.Enc.int b pred;
          Buf.Enc.option Buf.Enc.int b bypass
      | JoinReq { joiner } ->
          Buf.Enc.byte b 1;
          Buf.Enc.int b joiner
      | Welcome { succ } ->
          Buf.Enc.byte b 2;
          Buf.Enc.int b succ
      | Relink { leaver; new_succ } ->
          Buf.Enc.byte b 3;
          Buf.Enc.int b leaver;
          Buf.Enc.int b new_succ)
    (fun d ->
      let* tag = byte d in
      match tag with
      | 0 ->
          let* stamp = int d in
          let* pred = int d in
          let* bypass = option int d in
          Ok (Token { stamp; pred; bypass })
      | 1 ->
          let* joiner = int d in
          Ok (JoinReq { joiner })
      | 2 ->
          let* succ = int d in
          Ok (Welcome { succ })
      | 3 ->
          let* leaver = int d in
          let* new_succ = int d in
          Ok (Relink { leaver; new_succ })
      | t -> bad_tag "ring-membership" t)

(* ---------------- random-walk ---------------- *)

let random_walk =
  let open Tr_proto.Random_walk in
  make_codec ~name:"random-walk" ~key:14 ~version:1
    (fun b (Token { gen; serial }) ->
      Buf.Enc.byte b 0;
      Buf.Enc.int b gen;
      Buf.Enc.int b serial)
    (fun d ->
      let* tag = byte d in
      match tag with
      | 0 ->
          let* gen = int d in
          let* serial = int d in
          Ok (Token { gen; serial })
      | t -> bad_tag "random-walk" t)

(* ---------------- registry ---------------- *)

type packed =
  | Packed :
      (module Node_intf.PROTOCOL with type msg = 'm) * 'm Codec.t
      -> packed

(* [binsearch-throttle] shares the [binsearch] codec but registers under
   its own protocol name (the codec key on the wire is the same — the
   two speak the same language, which is precisely the point). *)
let pack (type m) (module P : Node_intf.PROTOCOL with type msg = m)
    (codec : m Codec.t) =
  Packed ((module P), codec)

let all =
  [
    pack (module Tr_proto.Ring) ring;
    pack (module (val Tr_proto.Tree.protocol_t)) tree;
    pack (module (val Tr_proto.Suzuki_kasami.protocol_t)) suzuki_kasami;
    pack (module (val Tr_proto.Seq_search.protocol_t)) seq_search;
    pack (module (val Tr_proto.Binsearch.make ())) binsearch;
    pack (module (val Tr_proto.Binsearch.make ~throttle:true ())) binsearch;
    pack (module (val Tr_proto.Directed.protocol_t)) directed;
    pack (module (val Tr_proto.Cleanup.protocol_rotation_t)) cleanup_rotation;
    pack (module (val Tr_proto.Cleanup.protocol_inverse_t)) cleanup_inverse;
    pack (module (val Tr_proto.Adaptive.make ())) adaptive;
    pack (module (val Tr_proto.Pushpull.make ())) pushpull;
    pack (module (val Tr_proto.Failure.make ())) failure;
    pack (module (val Tr_proto.Failsafe_search.make ())) failsafe_search;
    pack (module (val Tr_proto.Membership.make ())) membership;
    pack (module Tr_proto.Random_walk) random_walk;
  ]

let name_of (Packed ((module P), _)) = P.name
let names = List.map name_of all
let find name = List.find_opt (fun p -> String.equal (name_of p) name) all

let find_exn name =
  match find name with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Tr_wire.Codecs: no codec for protocol %S (valid: %s)"
           name (String.concat ", " names))
