let magic = 0xA7
let version = 1
let max_payload = 1 lsl 24

let encode buf payload =
  if String.length payload > max_payload then
    invalid_arg "Wire.Frame.encode: payload too large";
  Buffer.add_char buf (Char.chr magic);
  Buffer.add_char buf (Char.chr version);
  Buf.Enc.uvarint buf (String.length payload);
  Buffer.add_string buf payload

let to_string payload =
  let buf = Buffer.create (String.length payload + 4) in
  encode buf payload;
  Buffer.contents buf

(* Header + payload straight out of another Buffer — the scratch-encode
   path builds the payload once and frames it with no intermediate
   string. *)
let encode_buffer buf payload =
  let len = Buffer.length payload in
  if len > max_payload then
    invalid_arg "Wire.Frame.encode_buffer: payload too large";
  Buffer.add_char buf (Char.chr magic);
  Buffer.add_char buf (Char.chr version);
  Buf.Enc.uvarint buf len;
  Buffer.add_buffer buf payload

type view = { buf : Bytes.t; off : int; len : int }

let view_to_string { buf; off; len } = Bytes.sub_string buf off len

module Decoder = struct
  type progress = Frame of string | Await | Skip of string

  type view_progress = View of view | Await_view | Skip_view of string

  (* Unconsumed input lives in [buf.[start .. start+len-1]]; [feed]
     appends, [next] consumes from the front and compacts lazily. *)
  type t = {
    mutable buf : Bytes.t;
    mutable start : int;
    mutable len : int;
    mutable skips : int;
  }

  let create () = { buf = Bytes.create 256; start = 0; len = 0; skips = 0 }
  let skipped_events t = t.skips
  let buffered t = t.len

  let reserve t extra =
    let needed = t.len + extra in
    if t.start > 0 && (t.start + needed > Bytes.length t.buf || t.start > 4096)
    then begin
      Bytes.blit t.buf t.start t.buf 0 t.len;
      t.start <- 0
    end;
    if needed > Bytes.length t.buf then begin
      let cap = ref (2 * Bytes.length t.buf) in
      while needed > !cap do
        cap := 2 * !cap
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf t.start bigger 0 t.len;
      t.buf <- bigger;
      t.start <- 0
    end

  let feed_sub t chunk ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length chunk then
      invalid_arg "Wire.Frame.Decoder.feed_sub: bad bounds";
    reserve t len;
    Bytes.blit chunk pos t.buf (t.start + t.len) len;
    t.len <- t.len + len

  let feed t chunk =
    feed_sub t (Bytes.unsafe_of_string chunk) ~pos:0 ~len:(String.length chunk)

  let peek t i = Char.code (Bytes.get t.buf (t.start + i))

  let consume t k =
    t.start <- t.start + k;
    t.len <- t.len - k;
    if t.len = 0 then t.start <- 0

  (* Read a uvarint at offset [off]; [Ok (value, bytes_used)], [Error
     `Await] when the buffered input ends mid-varint, [Error `Malformed]
     on an overlong encoding. Mirrors [Buf.Dec.uvarint]: 63-bit ints
     need at most 9 LEB128 groups (shift cap 56); a 10th byte would
     shift by 63, which is unspecified for OCaml ints, so reject before
     reading it. *)
  let read_uvarint t off =
    let rec go acc shift used =
      if used >= 9 then Error `Malformed
      else if off + used >= t.len then Error `Await
      else
        let b = peek t (off + used) in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 = 0 then Ok (acc, used + 1)
        else go acc (shift + 7) (used + 1)
    in
    go 0 0 0

  (* Drop the bogus leading byte and scan to the next candidate magic so
     the stream re-locks at the following frame boundary. *)
  let resync t reason =
    consume t 1;
    let skipped = ref 1 in
    while t.len > 0 && peek t 0 <> magic do
      consume t 1;
      incr skipped
    done;
    t.skips <- t.skips + 1;
    Printf.sprintf "%s; skipped %d bytes" reason !skipped

  (* The returned view aliases [t.buf]: [consume] only moves indices, so
     the slice stays intact until the next [feed]/[feed_sub] (which may
     compact or reallocate the buffer). *)
  let next_view t =
    if t.len = 0 then Await_view
    else if peek t 0 <> magic then Skip_view (resync t "bad magic")
    else if t.len < 2 then Await_view
    else
      let v = peek t 1 in
      match read_uvarint t 2 with
      | Error `Await -> Await_view
      | Error `Malformed -> Skip_view (resync t "malformed length varint")
      | Ok (plen, used) ->
          (* A sign-overflowed varint decodes negative — treat it like
             any oversized declaration, never as an offset. *)
          if plen < 0 || plen > max_payload then
            Skip_view
              (resync t (Printf.sprintf "declared payload %d exceeds cap" plen))
          else begin
            let total = 2 + used + plen in
            if t.len < total then Await_view
            else if v <> version then begin
              consume t total;
              t.skips <- t.skips + 1;
              Skip_view (Printf.sprintf "unsupported frame version %d" v)
            end
            else begin
              let off = t.start + 2 + used in
              consume t total;
              View { buf = t.buf; off; len = plen }
            end
          end

  let next t =
    match next_view t with
    | View v -> Frame (view_to_string v)
    | Await_view -> Await
    | Skip_view reason -> Skip reason
end

(* Length varint of a whole-string frame, packed as
   [(plen lsl 4) lor bytes_used] so the hot path allocates nothing:
   negative codes are errors (-1 malformed, -2 truncated, -3 payload
   over cap). Packing is safe because plen is checked against
   [max_payload] (24 bits) before shifting. *)
let rec exact_varint buf len acc shift used =
  if used >= 9 then -1
  else if 2 + used >= len then -2
  else
    let b = Char.code (Bytes.unsafe_get buf (2 + used)) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then
      if acc < 0 || acc > max_payload then -3 else (acc lsl 4) lor (used + 1)
    else exact_varint buf len acc (shift + 7) (used + 1)

(* Exactly one frame spanning the whole string — the loopback fast path,
   where every mailbox entry is a single encoder-produced frame. The
   view aliases [frame] without copying. *)
let decode_exact frame =
  let len = String.length frame in
  let buf = Bytes.unsafe_of_string frame in
  if len < 2 then Error "frame shorter than header"
  else if Char.code (Bytes.unsafe_get buf 0) <> magic then Error "bad magic"
  else if Char.code (Bytes.unsafe_get buf 1) <> version then
    Error "unsupported frame version"
  else
    let code = exact_varint buf len 0 0 0 in
    if code = -1 then Error "malformed length varint"
    else if code = -2 then Error "truncated length varint"
    else if code = -3 then Error "declared payload too long"
    else
      let used = code land 0xf and plen = code lsr 4 in
      if 2 + used + plen <> len then Error "frame length mismatch"
      else Ok { buf; off = 2 + used; len = plen }
