type error = Truncated | Malformed of string

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated input"
  | Malformed reason -> Format.fprintf ppf "malformed input: %s" reason

let error_to_string e = Format.asprintf "%a" pp_error e

(* Zigzag maps small-magnitude signed ints to small unsigned ints:
   0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ... On 63-bit OCaml ints the
   round-trip is exact for every representable value. *)
let zigzag v = (v lsl 1) lxor (v asr (Sys.int_size - 1))

let unzigzag u = (u lsr 1) lxor (-(u land 1))

module Enc = struct
  let byte buf v = Buffer.add_char buf (Char.chr (v land 0xff))

  (* LEB128 over the int's 63-bit two's-complement pattern: [lsr] makes
     the loop terminate even when the top (sign) bit is set, which
     happens for zigzagged values of large magnitude. Top-level
     recursion, not a nested [go] — a nested closure would allocate on
     every call, and this is the hottest byte-producing path. *)
  let rec unsigned_varint buf v =
    if v >= 0 && v < 0x80 then byte buf v
    else begin
      byte buf (0x80 lor (v land 0x7f));
      unsigned_varint buf (v lsr 7)
    end

  let uvarint buf v =
    if v < 0 then invalid_arg "Wire.Enc.uvarint: negative";
    unsigned_varint buf v

  let int buf v = unsigned_varint buf (zigzag v)
  let bool buf v = byte buf (if v then 1 else 0)

  let option enc buf = function
    | None -> byte buf 0
    | Some v ->
        byte buf 1;
        enc buf v

  let list enc buf xs =
    uvarint buf (List.length xs);
    List.iter (fun x -> enc buf x) xs

  let int_array buf xs =
    uvarint buf (Array.length xs);
    Array.iter (fun x -> int buf x) xs

  let string buf s =
    uvarint buf (String.length s);
    Buffer.add_string buf s
end

module Dec = struct
  (* [data] is bytes so a cursor can read straight out of a frame
     decoder's window without a per-frame [Bytes.sub_string] copy; the
     decoder never writes while a cursor is live, and [of_string] wraps
     without copying ([unsafe_of_string] is sound because no code path
     here mutates [data]). *)
  type t = { data : bytes; mutable pos : int; limit : int }

  let of_bytes ?(pos = 0) ?limit data =
    let limit = match limit with None -> Bytes.length data | Some l -> l in
    if pos < 0 || limit > Bytes.length data || pos > limit then
      invalid_arg "Wire.Dec.of_bytes: bad bounds";
    { data; pos; limit }

  let of_string ?pos ?limit data =
    of_bytes ?pos ?limit (Bytes.unsafe_of_string data)

  let pos t = t.pos
  let remaining t = t.limit - t.pos

  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

  let byte t =
    if t.pos >= t.limit then Error Truncated
    else begin
      let c = Char.code (Bytes.unsafe_get t.data t.pos) in
      t.pos <- t.pos + 1;
      Ok c
    end

  (* 63-bit ints need at most 9 LEB128 groups; a tenth continuation byte
     means the input is garbage, not merely long. *)
  let max_varint_bytes = 9

  (* The varint loop is the hot path of every decode: written as a
     top-level recursion with the byte read inlined so one call
     allocates exactly one result, not a closure plus a result per
     byte. *)
  let rec uvarint_loop t acc shift count =
    if count > max_varint_bytes then Error (Malformed "varint too long")
    else if t.pos >= t.limit then Error Truncated
    else begin
      let b = Char.code (Bytes.unsafe_get t.data t.pos) in
      t.pos <- t.pos + 1;
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Ok acc
      else uvarint_loop t acc (shift + 7) (count + 1)
    end

  let uvarint t = uvarint_loop t 0 0 1

  let int t =
    match uvarint t with
    | Ok u -> Ok (unzigzag u)
    | Error _ as e -> e

  let bool t =
    match byte t with
    | Ok 0 -> Ok false
    | Ok 1 -> Ok true
    | Ok b -> Error (Malformed (Printf.sprintf "bool byte %#x" b))
    | Error _ as e -> e

  let option dec t =
    let* b = byte t in
    match b with
    | 0 -> Ok None
    | 1 ->
        let* v = dec t in
        Ok (Some v)
    | b -> Error (Malformed (Printf.sprintf "option byte %#x" b))

  (* Every element costs at least one byte, so a length that exceeds the
     remaining input is provably bogus — reject it before allocating. *)
  let check_len t len =
    if len < 0 || len > remaining t then
      Error (Malformed (Printf.sprintf "length %d exceeds remaining input" len))
    else Ok len

  let list dec t =
    let* len = uvarint t in
    let* len = check_len t len in
    let rec go acc k =
      if k = 0 then Ok (List.rev acc)
      else
        let* v = dec t in
        go (v :: acc) (k - 1)
    in
    go [] len

  let int_array t =
    let* len = uvarint t in
    let* len = check_len t len in
    let arr = Array.make len 0 in
    let rec go k =
      if k = len then Ok arr
      else
        let* v = int t in
        arr.(k) <- v;
        go (k + 1)
    in
    go 0

  let string t =
    let* len = uvarint t in
    let* len = check_len t len in
    let s = Bytes.sub_string t.data t.pos len in
    t.pos <- t.pos + len;
    Ok s

  let expect_end t =
    if t.pos = t.limit then Ok ()
    else
      Error
        (Malformed (Printf.sprintf "%d trailing bytes in frame" (remaining t)))
end
