(** Versioned, length-prefixed framing for a byte stream.

    A frame is [magic (1 byte) | version (1 byte) | length (uvarint) |
    payload (length bytes)]. The magic byte lets a receiver that lands
    mid-stream (or behind corrupted bytes) resynchronise: on any framing
    error the decoder drops bytes up to the next candidate magic byte and
    reports a [`Skip] instead of raising, so one bad frame never poisons
    the connection.

    The decoder is incremental — [feed] it whatever chunk the socket
    produced (partial frames included) and pull complete payloads with
    [next]. *)

val magic : int
(** First byte of every frame, [0xA7]. *)

val version : int
(** Wire format version emitted by {!encode}. Frames carrying an
    unknown version are skipped whole (their length prefix is still
    trusted, which is the point of putting it outside the payload). *)

val max_payload : int
(** Upper bound on payload length accepted by the decoder; a longer
    declared length is treated as corruption, not an allocation request. *)

val encode : Buffer.t -> string -> unit
(** Append one frame carrying the given payload. *)

val to_string : string -> string
(** [to_string payload] is a single encoded frame. *)

module Decoder : sig
  type t

  type progress =
    | Frame of string  (** One complete payload, in arrival order. *)
    | Await  (** Need more input; feed another chunk. *)
    | Skip of string
        (** Bytes were discarded (desync, oversized or unknown-version
            frame); the reason is diagnostic. Decoding continues. *)

  val create : unit -> t
  val feed : t -> string -> unit
  val feed_sub : t -> Bytes.t -> pos:int -> len:int -> unit
  val next : t -> progress

  val skipped_events : t -> int
  (** Number of [Skip] results produced so far (decode-error counter). *)

  val buffered : t -> int
  (** Bytes held waiting for a complete frame. *)
end
