(** Versioned, length-prefixed framing for a byte stream.

    A frame is [magic (1 byte) | version (1 byte) | length (uvarint) |
    payload (length bytes)]. The magic byte lets a receiver that lands
    mid-stream (or behind corrupted bytes) resynchronise: on any framing
    error the decoder drops bytes up to the next candidate magic byte and
    reports a [`Skip] instead of raising, so one bad frame never poisons
    the connection.

    The decoder is incremental — [feed] it whatever chunk the socket
    produced (partial frames included) and pull complete payloads with
    [next]. *)

val magic : int
(** First byte of every frame, [0xA7]. *)

val version : int
(** Wire format version emitted by {!encode}. Frames carrying an
    unknown version are skipped whole (their length prefix is still
    trusted, which is the point of putting it outside the payload). *)

val max_payload : int
(** Upper bound on payload length accepted by the decoder; a longer
    declared length is treated as corruption, not an allocation request. *)

val encode : Buffer.t -> string -> unit
(** Append one frame carrying the given payload. *)

val encode_buffer : Buffer.t -> Buffer.t -> unit
(** [encode_buffer buf payload] appends one frame whose payload is the
    current contents of [payload], with no intermediate string — the
    allocation-free send path pairs this with a reused scratch pair. *)

val to_string : string -> string
(** [to_string payload] is a single encoded frame. *)

type view = { buf : Bytes.t; off : int; len : int }
(** A borrowed slice [buf.[off .. off+len-1]] holding one frame payload.
    Views alias buffers owned by a decoder (or by the string passed to
    {!decode_exact}); they are only valid until the owner's next mutation
    — for {!Decoder.next_view}, until the next [feed]. Copy out with
    {!view_to_string} to keep a payload longer. *)

val view_to_string : view -> string

val decode_exact : string -> (view, string) result
(** Parse a string that contains exactly one frame (header included) and
    return a zero-copy view of its payload. Any framing defect — bad
    magic or version, bad length varint, trailing or missing bytes — is
    an [Error] with a diagnostic. This is the loopback fast path, where
    each queued entry is one encoder-produced frame by construction. *)

module Decoder : sig
  type t

  type progress =
    | Frame of string  (** One complete payload, in arrival order. *)
    | Await  (** Need more input; feed another chunk. *)
    | Skip of string
        (** Bytes were discarded (desync, oversized or unknown-version
            frame); the reason is diagnostic. Decoding continues. *)

  type view_progress =
    | View of view  (** One complete payload, borrowed from the buffer. *)
    | Await_view
    | Skip_view of string

  val create : unit -> t
  val feed : t -> string -> unit
  val feed_sub : t -> Bytes.t -> pos:int -> len:int -> unit

  val next : t -> progress
  (** {!next_view} plus a payload copy — convenient, but the hot path
      uses {!next_view} and decodes in place. *)

  val next_view : t -> view_progress
  (** Pull the next complete payload without copying it. The view is
      invalidated by the next [feed]/[feed_sub] (decoding may compact or
      grow the internal buffer); calling [next_view] again first is
      fine. *)

  val skipped_events : t -> int
  (** Number of [Skip] results produced so far (decode-error counter). *)

  val buffered : t -> int
  (** Bytes held waiting for a complete frame. *)
end
