exception Parse_error of { position : int; message : string }

type cursor = { input : string; mutable pos : int }

let error cursor message = raise (Parse_error { position = cursor.pos; message })

let peek cursor =
  if cursor.pos < String.length cursor.input then Some cursor.input.[cursor.pos]
  else None

let advance cursor = cursor.pos <- cursor.pos + 1

let skip_spaces cursor =
  let rec go () =
    match peek cursor with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cursor;
        go ()
    | Some _ | None -> ()
  in
  go ()

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_ident_char c =
  is_ident_start c || is_digit c || c = '_' || c = '\''

let lex_int cursor =
  let start = cursor.pos in
  if peek cursor = Some '-' then advance cursor;
  let rec go () =
    match peek cursor with
    | Some c when is_digit c ->
        advance cursor;
        go ()
    | Some _ | None -> ()
  in
  go ();
  let text = String.sub cursor.input start (cursor.pos - start) in
  match int_of_string_opt text with
  | Some i -> i
  | None -> error cursor (Printf.sprintf "malformed integer %S" text)

let lex_ident cursor =
  let start = cursor.pos in
  let rec go () =
    match peek cursor with
    | Some c when is_ident_char c ->
        advance cursor;
        go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub cursor.input start (cursor.pos - start)

(* term-list separated by [sep], terminated by [close] (which is
   consumed). Returns [] for an immediately-closing bracket. *)
let rec parse_list cursor ~sep ~close =
  skip_spaces cursor;
  if peek cursor = Some close then begin
    advance cursor;
    []
  end
  else begin
    let first = parse_term cursor in
    let rec rest acc =
      skip_spaces cursor;
      match peek cursor with
      | Some c when c = sep ->
          advance cursor;
          rest (parse_term cursor :: acc)
      | Some c when c = close ->
          advance cursor;
          List.rev acc
      | Some c ->
          error cursor
            (Printf.sprintf "expected '%c' or '%c', found '%c'" sep close c)
      | None -> error cursor "unexpected end of input inside brackets"
    in
    rest [ first ]
  end

and parse_term cursor =
  skip_spaces cursor;
  match peek cursor with
  | None -> error cursor "unexpected end of input"
  | Some '_' ->
      advance cursor;
      Term.Wild
  | Some '{' ->
      advance cursor;
      Term.bag (parse_list cursor ~sep:'|' ~close:'}')
  | Some '<' ->
      advance cursor;
      Term.Seq (parse_list cursor ~sep:',' ~close:'>')
  | Some '(' -> (
      advance cursor;
      match parse_list cursor ~sep:',' ~close:')' with
      | [] -> error cursor "empty parentheses"
      | [ single ] -> single
      | several -> Term.tuple several)
  | Some c when is_digit c || c = '-' -> Term.Int (lex_int cursor)
  | Some c when is_ident_start c -> (
      let name = lex_ident cursor in
      skip_spaces cursor;
      match peek cursor with
      | Some '(' ->
          advance cursor;
          let args = parse_list cursor ~sep:',' ~close:')' in
          if args = [] then error cursor "application with no arguments"
          else Term.App (name, args)
      | Some _ | None ->
          if c >= 'A' && c <= 'Z' then Term.Var name else Term.Const name)
  | Some c -> error cursor (Printf.sprintf "unexpected character '%c'" c)

let term input =
  let cursor = { input; pos = 0 } in
  let result = parse_term cursor in
  skip_spaces cursor;
  match peek cursor with
  | None -> result
  | Some c -> error cursor (Printf.sprintf "trailing input starting at '%c'" c)

let term_opt input = try Some (term input) with Parse_error _ -> None
