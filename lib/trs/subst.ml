module M = Map.Make (String)

type t = Term.t M.t

let empty = M.empty
let is_empty = M.is_empty
let bind t name term = M.add name term t
let find t name = M.find_opt name t

let find_exn t name =
  match M.find_opt name t with Some v -> v | None -> raise Not_found

let find_int t name =
  match M.find_opt name t with
  | Some (Term.Int i) -> i
  | Some other ->
      invalid_arg
        (Printf.sprintf "Subst.find_int: %s bound to non-integer %s" name
           (Term.to_string other))
  | None -> invalid_arg (Printf.sprintf "Subst.find_int: %s unbound" name)

let mem t name = M.mem name t
let bindings t = M.bindings t

let merge_consistent a b =
  let consistent = ref true in
  let merged =
    M.union
      (fun _name ta tb ->
        if Term.equal ta tb then Some ta
        else begin
          consistent := false;
          Some ta
        end)
      a b
  in
  if !consistent then Some merged else None

let rec apply t term =
  match term with
  | Term.Const _ | Term.Int _ | Term.Wild -> term
  | Term.Var v -> ( match M.find_opt v t with Some bound -> bound | None -> term)
  | Term.App ("append", [ h; d ]) ->
      let h' = apply t h and d' = apply t d in
      Term.seq_append h' d'
  | Term.App (f, args) -> Term.App (f, List.map (apply t) args)
  | Term.Seq items -> Term.Seq (List.map (apply t) items)
  | Term.Bag items -> Term.bag (List.map (apply t) items)

let equal a b = M.equal Term.equal a b

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  M.iter
    (fun name term ->
      if not !first then Format.fprintf ppf ", ";
      first := false;
      Format.fprintf ppf "%s ↦ %a" name Term.pp term)
    t;
  Format.fprintf ppf "}"
