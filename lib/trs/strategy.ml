type t = First | Round_robin of int ref | Custom of (count:int -> int)

let first = First
let round_robin () = Round_robin (ref 0)
let custom pick = Custom pick

let choose t ~count =
  if count <= 0 then invalid_arg "Strategy.choose: no instances to choose from";
  match t with
  | First -> 0
  | Round_robin cursor ->
      let i = !cursor mod count in
      incr cursor;
      i
  | Custom pick ->
      let i = pick ~count in
      if i < 0 || i >= count then
        invalid_arg "Strategy.choose: custom pick out of range";
      i
