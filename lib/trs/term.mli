(** Terms of the rewriting systems used to specify the protocols.

    The grammar mirrors the paper's notation (§2):
    - constants (Greek letters in the paper) and integers;
    - pattern {e variables} (capitalised identifiers in the paper) and the
      wild-card ['-'];
    - constructor applications such as [pair(x, d)] or [phi(x)];
    - {e bags}: the associative–commutative ['|'] catenation used for the
      sets [Q], [P], [I], [O], [W];
    - {e sequences}: the ordered histories built with the append
      operator [⊕].

    Bags are kept in a canonical sorted form so that structural equality
    coincides with equality modulo associativity and commutativity. *)

type t =
  | Const of string
  | Int of int
  | Var of string  (** Pattern variable; never present in a ground term. *)
  | Wild  (** The '-' wild card; patterns only. *)
  | App of string * t list
  | Bag of t list  (** AC multiset; canonicalized to sorted order. *)
  | Seq of t list  (** Ordered sequence (history). *)

(** {1 Smart constructors} *)

val tuple : t list -> t
(** [App ("tuple", items)] — the paper's parenthesised grouping. *)

val pair : t -> t -> t
val bag : t list -> t
(** Canonicalizes: flattens nested bags and sorts elements. *)

val seq : t list -> t
val phi : int -> t
(** [phi x] is φ_x, the empty-datum symbol of node [x]. *)

val tau : int -> t
(** [tau x] is τ_x, the trap symbol set on behalf of node [x]. *)

val datum : int -> int -> t
(** [datum x k] is the [k]-th fresh datum broadcast by node [x]
    (the paper's [new_x]). *)

val rot : int -> t
(** [rot x] — marker appended to a history when the token leaves node [x]
    on its circular rotation; realizes the projection set [C] of the
    paper's [⊂_C] comparison. *)

(** {1 Operations} *)

val compare : t -> t -> int
(** Total structural order; on canonical terms this is equality modulo AC.
    Physically equal (sub)terms short-circuit to 0 without descending. *)

val equal : t -> t -> bool
(** [compare a b = 0], with a physical-equality fast path. *)

val hash : t -> int
(** Structural hash, consistent with {!equal} on canonical terms: bags
    hash their elements in order, so two AC-equal bags hash alike only
    after {!canonicalize}. Always non-negative. *)

val canonicalize : t -> t
(** Sort bags (recursively) and flatten nested bags. Idempotent, and
    sharing-preserving: an already-canonical term (or subterm) is
    returned physically unchanged, so re-canonicalising canonical data
    allocates nothing and [canonicalize t == t] tests canonicity. *)

val is_canonical : t -> bool
(** [canonicalize t == t]. *)

val is_ground : t -> bool
(** No [Var] or [Wild] anywhere. *)

val vars : t -> string list
(** Distinct variable names, in first-occurrence order. *)

val size : t -> int
(** Node count; used to bound exploration. *)

val seq_append : t -> t -> t
(** [seq_append h d] is [h ⊕ d]. Appending [phi _] is the identity (the
    paper: φ is the identity for ⊕); appending a [Seq] concatenates (a
    node's composite datum [d_x] is itself a sequence, and ⊕ of the empty
    sequence is again the identity).
    @raise Invalid_argument if [h] is not a [Seq]. *)

val seq_is_prefix : t -> t -> bool
(** [seq_is_prefix a b] — the paper's [A ⊂ B] (prefix, inclusive). *)

val seq_project : keep:(t -> bool) -> t -> t
(** Projection of a sequence onto the elements satisfying [keep]
    (for [⊂_C]). @raise Invalid_argument on non-[Seq]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Hashed terms}

    Hash-consing-lite for hot paths: a term paired with its structural
    hash, computed once when the pair is built. {!Explore} keys its
    visited set on these. *)

module Hashed : sig
  type term := t
  type t

  val make : term -> t
  (** Computes and caches [hash term]; O(size of the term), once. *)

  val term : t -> term
  val hash : t -> int  (** The cached hash; O(1). *)

  val equal : t -> t -> bool
  (** Cached-hash comparison first, then structural {!Term.equal}
      (which itself short-circuits on physical equality). *)
end

module Tbl : Hashtbl.S with type key = Hashed.t
(** Hashtable keyed on hashed terms — the visited-set representation
    for state-space exploration. *)
