(** Rewriting strategies: which applicable instance to fire next.

    A strategy narrows the non-deterministic rule relation to a single
    reduction, as §4 of the paper does when restricting behaviours for
    performance. Strategies only pick indices, so the module stays
    independent of any random-number source; build a random strategy from
    whatever generator the caller owns. *)

type t

val first : t
(** Always the lowest-indexed applicable instance. *)

val round_robin : unit -> t
(** Rotates through instance indices across successive choices (stateful);
    gives every enabled rule a fair chance along the reduction. *)

val custom : (count:int -> int) -> t
(** [custom pick]: [pick ~count] must return an index in [\[0, count)].
    Use e.g. [Strategy.custom (fun ~count -> Rng.int rng count)]. *)

val choose : t -> count:int -> int
(** @raise Invalid_argument if [count <= 0] or the pick is out of range. *)
