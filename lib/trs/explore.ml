(* Bounded breadth-first exploration, in two engines that agree bit for bit:

   - A sequential fast path (the original implementation): one FIFO queue,
     one visited hashtable keyed on hash-cached terms.

   - A sharded layer-synchronous engine: the visited set is partitioned
     into [D] shards by the cached structural hash, and each BFS layer is
     expanded by [D] workers running on [Tr_sim.Pool] domains. Worker [w]
     expands a contiguous slab of the layer and routes every successor to
     its owner shard through a per-(worker, shard) exchange cell — each
     cell has exactly one writer (the expanding worker) and one reader
     (the owning shard), handed over at the layer barrier, so no locks are
     needed anywhere on the hot path. Candidates carry their (state index,
     instance index) position, which makes the merge that applies the
     [max_states] cap a deterministic total order: the visited order,
     stats, rule counts, edge list and violation list come out identical
     to the sequential engine for every domain count.

   A spill mode bounds resident memory for explorations far past the
   in-memory comfort zone: frontier layers are streamed to temp files as
   back-to-back [Marshal] frames and read back chunk-by-chunk, and the
   visited shards store only a 16-byte digest of the marshalled canonical
   bytes per state (hash compaction — see [Bkey] below for the collision
   arithmetic), so no term graphs survive a round. *)

module Pool = Tr_sim.Pool

(* Visited sets are hashtables keyed on terms with their structural hash
   cached at insertion time (Term.Hashed) — membership is a cached-int
   comparison plus, on collision, one structural equality, instead of the
   O(log n) full-term comparisons a [Set.Make(Term)] pays per step. *)
type hset = unit Term.Tbl.t

let hset_mem (set : hset) h = Term.Tbl.mem set h
let hset_add (set : hset) h = Term.Tbl.replace set h ()

type stats = {
  states : int;
  transitions : int;
  max_depth : int;
  truncated : bool;
}

type violation = { state : Term.t; depth : int; message : string }

type perf = {
  wall_s : float;
  states_per_s : float;
  domains_used : int;
  peak_rss_kb : int;
  spilled_layers : int;
  spilled_bytes : int;
}

type outcome = {
  visited_order : Term.t list;
  edge_list : (Term.t * string * Term.t) list;
  stats : stats;
  violations : violation list;
  perf : perf;
}

(* ---------------- process introspection ---------------- *)

(* VmHWM from /proc/self/status, in kB; 0 where /proc is unavailable. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception _ -> 0
  | ic ->
      let parse line =
        (* "VmHWM:     12345 kB" *)
        let rest = String.trim (String.sub line 6 (String.length line - 6)) in
        let digits =
          match String.index_opt rest ' ' with
          | Some i -> String.sub rest 0 i
          | None -> rest
        in
        Option.value (int_of_string_opt digits) ~default:0
      in
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
            if String.length line > 6 && String.equal (String.sub line 0 6) "VmHWM:"
            then parse line
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

(* Writing "5" to /proc/self/clear_refs resets the peak-RSS water mark so
   successive measurements in one process are independent. Privileged or
   non-Linux environments refuse it; callers get [false] and should treat
   subsequent readings as a monotone high-water mark. *)
let reset_peak_rss () =
  match open_out "/proc/self/clear_refs" with
  | exception _ -> false
  | oc -> (
      try
        output_string oc "5";
        close_out oc;
        true
      with _ ->
        close_out_noerr oc;
        false)

(* ---------------- sequential engine ---------------- *)

let default_max_states = 100_000

let explore_seq ~max_states ?max_depth ~check ~want_edges system ~init =
  let init = Term.canonicalize init in
  let queue = Queue.create () in
  Queue.push (init, 0) queue;
  let visited : hset = Term.Tbl.create 1024 in
  hset_add visited (Term.Hashed.make init);
  let rev_order = ref [ init ] in
  let rev_edges = ref [] in
  let violations = ref [] in
  let transitions = ref 0 in
  let deepest = ref 0 in
  let truncated = ref false in
  let within_depth depth =
    match max_depth with None -> true | Some d -> depth < d
  in
  let verify state depth =
    match check with
    | None -> ()
    | Some f -> (
        match f state with
        | Ok () -> ()
        | Error message -> violations := { state; depth; message } :: !violations)
  in
  verify init 0;
  while not (Queue.is_empty queue) do
    let state, depth = Queue.pop queue in
    if depth > !deepest then deepest := depth;
    if within_depth depth then
      List.iter
        (fun (rule, _subst, next) ->
          incr transitions;
          if want_edges then
            rev_edges := (state, Rule.name rule, next) :: !rev_edges;
          let hnext = Term.Hashed.make next in
          if not (hset_mem visited hnext) then
            if Term.Tbl.length visited >= max_states then truncated := true
            else begin
              hset_add visited hnext;
              rev_order := next :: !rev_order;
              verify next (depth + 1);
              Queue.push (next, depth + 1) queue
            end)
        (System.instances system state)
    else truncated := true
  done;
  ( List.rev !rev_order,
    List.rev !rev_edges,
    {
      states = Term.Tbl.length visited;
      transitions = !transitions;
      max_depth = !deepest;
      truncated = !truncated;
    },
    List.rev !violations )

(* ---------------- sharded layer-synchronous engine ---------------- *)

(* Spill-mode visited shards key on a 16-byte digest of the canonical
   term plus its structural hash: flat fixed-size strings, no retained
   term graphs. The digest is taken over an injective flat encoding
   (tag byte per constructor, length-prefixed strings and lists,
   fixed-width ints), so digest equality coincides with structural
   equality up to digest collisions — hash compaction in the
   model-checking sense, with a collision probability around 1e-25 at
   10^6 states (128-bit digests), far below any hardware error rate. *)
module Bkey = struct
  type t = { kh : int; kb : string }

  let equal a b = a.kh = b.kh && String.equal a.kb b.kb
  let hash k = k.kh
end

module Btbl = Hashtbl.Make (Bkey)

type shard = Terms of hset | Compact of unit Btbl.t

(* The encoder writes into a reused per-worker scratch buffer and the
   digest is taken in place: expansion computes millions of digests per
   run, and going through [Marshal.to_string] allocated a fresh
   unshared-size buffer for each — enough transient garbage to balloon
   the heap past the in-memory engine's and defeat spill mode's
   purpose. *)
type scratch = { mutable buf : Bytes.t; mutable len : int }

let scratch_make () = { buf = Bytes.create 4096; len = 0 }

let scratch_reserve s n =
  let need = s.len + n in
  if need > Bytes.length s.buf then begin
    let cap = ref (Bytes.length s.buf * 2) in
    while need > !cap do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit s.buf 0 b 0 s.len;
    s.buf <- b
  end

let put_byte s v =
  scratch_reserve s 1;
  Bytes.unsafe_set s.buf s.len (Char.unsafe_chr v);
  s.len <- s.len + 1

let put_int s v =
  scratch_reserve s 8;
  Bytes.set_int64_le s.buf s.len (Int64.of_int v);
  s.len <- s.len + 8

let put_string s str =
  let n = String.length str in
  put_int s n;
  scratch_reserve s n;
  Bytes.blit_string str 0 s.buf s.len n;
  s.len <- s.len + n

let rec put_term s (t : Term.t) =
  match t with
  | Term.Const c ->
      put_byte s 0;
      put_string s c
  | Term.Int i ->
      put_byte s 1;
      put_int s i
  | Term.Var v ->
      put_byte s 2;
      put_string s v
  | Term.Wild -> put_byte s 3
  | Term.App (f, xs) ->
      put_byte s 4;
      put_string s f;
      put_list s xs
  | Term.Bag xs ->
      put_byte s 5;
      put_list s xs
  | Term.Seq xs ->
      put_byte s 6;
      put_list s xs

and put_list s xs =
  put_int s (List.length xs);
  List.iter (put_term s) xs

let digest_term_into s (t : Term.t) =
  s.len <- 0;
  put_term s t;
  Digest.subbytes s.buf 0 s.len

let digest_term t = digest_term_into (scratch_make ()) t

(* A successor routed from an expanding worker to its owner shard. The
   (ci, cj) position — source-state index in the layer, instance index
   within that state — is the key of the deterministic merge order. *)
type candidate = {
  ci : int;
  cj : int;
  ch : Term.Hashed.t;  (* canonical successor, hash cached *)
  cb : string;  (* spill mode: digest of the canonical term; else "" *)
}

let cand_compare a b =
  let c = Int.compare a.ci b.ci in
  if c <> 0 then c else Int.compare a.cj b.cj

let shard_key c = { Bkey.kh = Term.Hashed.hash c.ch; kb = c.cb }

let shard_mem shard c =
  match shard with
  | Terms t -> Term.Tbl.mem t c.ch
  | Compact t -> Btbl.mem t (shard_key c)

let shard_add shard c =
  match shard with
  | Terms t -> Term.Tbl.replace t c.ch ()
  | Compact t -> Btbl.replace t (shard_key c) ()

let shard_remove shard c =
  match shard with
  | Terms t -> Term.Tbl.remove t c.ch
  | Compact t -> Btbl.remove t (shard_key c)

(* A frontier layer: resident, or a temp file of back-to-back marshal
   frames (spill mode). Zero-count layers are never written to disk. *)
type layer = L_mem of Term.t array | L_file of { path : string; count : int }

let layer_count = function
  | L_mem a -> Array.length a
  | L_file { count; _ } -> count

let layer_free = function
  | L_mem _ -> ()
  | L_file { path; _ } -> ( try Sys.remove path with Sys_error _ -> ())

let explore_par ~max_states ?max_depth ~check ~want_edges ~pool ~domains:d
    ~spill_dir ~spill_chunk ~spilled_layers ~spilled_bytes system ~init =
  let spilling = spill_dir <> None in
  let pmap f xs =
    match pool with Some p -> Pool.map p f xs | None -> List.map f xs
  in
  let shards =
    Array.init d (fun _ ->
        if spilling then Compact (Btbl.create 1024)
        else Terms (Term.Tbl.create 1024))
  in
  let owner h = Term.Hashed.hash h mod d in
  let init = Term.canonicalize init in
  let init_cand =
    {
      ci = 0;
      cj = 0;
      ch = Term.Hashed.make init;
      cb = (if spilling then digest_term init else "");
    }
  in
  shard_add shards.(owner init_cand.ch) init_cand;
  let visited_count = ref 1 in
  let rev_order = ref (if spilling then [] else [ init ]) in
  let edge_chunks = ref [] in
  let violations = ref [] in
  let transitions = ref 0 in
  let deepest = ref 0 in
  let truncated = ref false in
  let within_depth depth =
    match max_depth with None -> true | Some dm -> depth < dm
  in
  (match check with
  | None -> ()
  | Some f -> (
      match f init with
      | Ok () -> ()
      | Error message -> violations := [ { state = init; depth = 0; message } ]));
  let make_layer accepted =
    match spill_dir with
    | None -> L_mem (Array.map (fun c -> Term.Hashed.term c.ch) accepted)
    | Some dir ->
        if Array.length accepted = 0 then L_mem [||]
        else begin
          let path = Filename.temp_file ~temp_dir:dir "tr-explore-" ".layer" in
          let oc = open_out_bin path in
          Array.iter
            (fun c ->
              Marshal.to_channel oc (Term.Hashed.term c.ch)
                [ Marshal.No_sharing ])
            accepted;
          spilled_bytes := !spilled_bytes + pos_out oc;
          close_out oc;
          incr spilled_layers;
          L_file { path; count = Array.length accepted }
        end
  in
  (* Split [0, len) into at most [d] contiguous non-empty slabs. *)
  let slabs len =
    let k = Int.min d len in
    List.init k (fun i -> (len * i / k, len * (i + 1) / k))
  in
  (* Expand one resident slice of the current layer; [base] is the global
     layer index of [slice.(0)]. Returns per-shard fresh-candidate lists
     (in (ci, cj) order), with fresh candidates provisionally inserted
     into their shard. *)
  let expand_chunk ~base (slice : Term.t array) =
    let len = Array.length slice in
    let results =
      pmap
        (fun (lo, hi) ->
          let trans = ref 0 in
          let rev_edges = ref [] in
          let buckets = Array.make d [] in
          let s = scratch_make () in
          for i = lo to hi - 1 do
            let state = slice.(i) in
            let gi = base + i in
            List.iteri
              (fun j (rule, _subst, next) ->
                incr trans;
                if want_edges then
                  rev_edges := (state, Rule.name rule, next) :: !rev_edges;
                let ch = Term.Hashed.make next in
                let cb = if spilling then digest_term_into s next else "" in
                let o = owner ch in
                buckets.(o) <- { ci = gi; cj = j; ch; cb } :: buckets.(o))
              (System.instances system state)
          done;
          (!trans, List.rev !rev_edges, buckets))
        (slabs len)
    in
    List.iter
      (fun (t, edges, _) ->
        transitions := !transitions + t;
        if want_edges && edges <> [] then edge_chunks := edges :: !edge_chunks)
      results;
    (* Dedup: shard [o] drains its exchange cells in worker order (slabs
       are contiguous, so concatenation preserves the (ci, cj) order) and
       provisionally claims every first occurrence. Shards are disjoint
       tables, so the jobs are data-race-free. *)
    pmap
      (fun o ->
        let fresh = ref [] in
        List.iter
          (fun (_, _, buckets) ->
            List.iter
              (fun c ->
                if not (shard_mem shards.(o) c) then begin
                  shard_add shards.(o) c;
                  fresh := c :: !fresh
                end)
              (List.rev buckets.(o)))
          results;
        List.rev !fresh)
      (List.init d Fun.id)
  in
  (* One layer: expand (possibly chunked from disk), merge each chunk's
     per-shard fresh lists into the global (ci, cj) order, apply the
     state cap, verify the accepted states, and stream them into the
     next layer. Chunks are fed in ascending layer position and each
     shard's fresh list is (ci, cj)-sorted, so merging per chunk and
     concatenating in feed order IS the global merge — and in spill
     mode it means a chunk's term graphs can be dropped as soon as its
     accepted states hit the next layer's file, bounding residency at
     O(spill_chunk) successor graphs instead of the whole layer's. *)
  let process_layer layer depth =
    (* Next-layer sink: resident accumulation, or a lazily opened temp
       file (never created when nothing gets accepted). *)
    let next_rev = ref [] in
    let next_count = ref 0 in
    let sink_file = ref None in
    let sink_oc () =
      match !sink_file with
      | Some (_, oc) -> oc
      | None ->
          let dir = Option.get spill_dir in
          let path = Filename.temp_file ~temp_dir:dir "tr-explore-" ".layer" in
          let oc = open_out_bin path in
          sink_file := Some (path, oc);
          oc
    in
    let budget = ref (max_states - !visited_count) in
    let consume_chunk fresh_by_shard =
      let merged =
        List.fold_left
          (fun acc fresh -> List.merge cand_compare acc fresh)
          [] fresh_by_shard
      in
      let accepted_rev = ref [] in
      let accepted_count = ref 0 in
      List.iter
        (fun c ->
          if !budget > 0 then begin
            decr budget;
            incr accepted_count;
            accepted_rev := c :: !accepted_rev
          end
          else begin
            truncated := true;
            shard_remove shards.(owner c.ch) c
          end)
        merged;
      visited_count := !visited_count + !accepted_count;
      let accepted = Array.of_list (List.rev !accepted_rev) in
      let n = Array.length accepted in
      (match check with
      | None -> ()
      | Some f ->
          if n > 0 then begin
            let found =
              pmap
                (fun (lo, hi) ->
                  let out = ref [] in
                  for i = hi - 1 downto lo do
                    match f (Term.Hashed.term accepted.(i).ch) with
                    | Ok () -> ()
                    | Error message -> out := (i, message) :: !out
                  done;
                  !out)
                (slabs n)
            in
            List.iter
              (List.iter (fun (i, message) ->
                   violations :=
                     {
                       state = Term.Hashed.term accepted.(i).ch;
                       depth = depth + 1;
                       message;
                     }
                     :: !violations))
              found
          end);
      if spilling then
        Array.iter
          (fun c ->
            Marshal.to_channel (sink_oc ()) (Term.Hashed.term c.ch)
              [ Marshal.No_sharing ])
          accepted
      else
        Array.iter
          (fun c ->
            next_rev := c.ch :: !next_rev;
            rev_order := Term.Hashed.term c.ch :: !rev_order)
          accepted;
      next_count := !next_count + n
    in
    let feed base slice = consume_chunk (expand_chunk ~base slice) in
    (match layer with
    | L_mem arr -> if Array.length arr > 0 then feed 0 arr
    | L_file { path; count } ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let base = ref 0 in
            while !base < count do
              let k = Int.min spill_chunk (count - !base) in
              let slice =
                Array.init k (fun _ -> (Marshal.from_channel ic : Term.t))
              in
              feed !base slice;
              base := !base + k
            done);
        layer_free layer);
    if spilling then
      match !sink_file with
      | None -> L_mem [||]
      | Some (path, oc) ->
          spilled_bytes := !spilled_bytes + pos_out oc;
          close_out oc;
          incr spilled_layers;
          L_file { path; count = !next_count }
    else
      L_mem
        (Array.of_list (List.rev_map (fun h -> Term.Hashed.term h) !next_rev))
  in
  let rec rounds layer depth =
    if layer_count layer = 0 then layer_free layer
    else begin
      if depth > !deepest then deepest := depth;
      if within_depth depth then rounds (process_layer layer depth) (depth + 1)
      else begin
        truncated := true;
        layer_free layer
      end
    end
  in
  rounds (make_layer [| init_cand |]) 0;
  ( List.rev !rev_order,
    List.concat (List.rev !edge_chunks),
    {
      states = !visited_count;
      transitions = !transitions;
      max_depth = !deepest;
      truncated = !truncated;
    },
    List.rev !violations )

(* ---------------- dispatch ---------------- *)

let explore ?(max_states = default_max_states) ?max_depth ?check
    ?(want_edges = false) ?pool ?domains ?spill_dir ?(spill_chunk = 8192)
    system ~init =
  let domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Explore.explore: domains < 1";
        d
    | None -> ( match pool with Some p -> Pool.domains p | None -> 1)
  in
  if spill_chunk < 1 then invalid_arg "Explore.explore: spill_chunk < 1";
  if spill_dir <> None && want_edges then
    invalid_arg "Explore.explore: want_edges is unavailable in spill mode";
  let t0 = Unix.gettimeofday () in
  let spilled_layers = ref 0 in
  let spilled_bytes = ref 0 in
  let finish (visited_order, edge_list, stats, violations) =
    let wall_s = Unix.gettimeofday () -. t0 in
    {
      visited_order;
      edge_list;
      stats;
      violations;
      perf =
        {
          wall_s;
          states_per_s =
            (if wall_s > 0.0 then float_of_int stats.states /. wall_s else 0.0);
          domains_used = domains;
          peak_rss_kb = peak_rss_kb ();
          spilled_layers = !spilled_layers;
          spilled_bytes = !spilled_bytes;
        };
    }
  in
  let par pool =
    explore_par ~max_states ?max_depth ~check ~want_edges ~pool ~domains
      ~spill_dir ~spill_chunk ~spilled_layers ~spilled_bytes system ~init
  in
  match (spill_dir, domains, pool) with
  | None, 1, _ ->
      finish (explore_seq ~max_states ?max_depth ~check ~want_edges system ~init)
  | _, _, Some p -> finish (par (Some p))
  | _, d, None when d > 1 ->
      Pool.with_pool ~domains:d (fun p -> finish (par (Some p)))
  | _, _, None -> finish (par None)

let bfs ?max_states ?max_depth ?check ?pool ?domains ?spill_dir system ~init =
  let outcome =
    explore ?max_states ?max_depth ?check ?pool ?domains ?spill_dir system ~init
  in
  (outcome.stats, outcome.violations)

let reachable ?max_states ?max_depth ?pool ?domains system ~init =
  (explore ?max_states ?max_depth ?pool ?domains system ~init).visited_order

let edges ?max_states ?max_depth ?pool ?domains system ~init =
  (explore ?max_states ?max_depth ?pool ?domains ~want_edges:true system ~init)
    .edge_list

(* Alphabetical by rule name; ties (impossible for distinct registry
   names, but explicit anyway) break on the count. Deliberately not the
   polymorphic [Stdlib.compare] so the sort order is pinned by type. *)
let compare_rule_count (name_a, count_a) (name_b, count_b) =
  let c = String.compare name_a name_b in
  if c <> 0 then c else Int.compare count_a count_b

let rule_counts ?max_states ?max_depth ?pool ?domains system ~init =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (_, rule, _) ->
      Hashtbl.replace counts rule
        (1 + Option.value (Hashtbl.find_opt counts rule) ~default:0))
    (edges ?max_states ?max_depth ?pool ?domains system ~init);
  List.sort compare_rule_count
    (Hashtbl.fold (fun rule c acc -> (rule, c) :: acc) counts [])

type liveness_report = {
  explored : int;
  goal_states : int;
  can_reach : int;
  cannot_reach : Term.t list;
  undecided : int;
}

let hset_of_list states =
  let set : hset = Term.Tbl.create 256 in
  List.iter (fun s -> hset_add set (Term.Hashed.make s)) states;
  set

(* Backward closure of [seeds] over the (reversed) edge relation.
   Mutates and returns [seeds]. *)
let backward_closure ~edges ~seeds =
  let predecessors = Term.Tbl.create 256 in
  List.iter
    (fun (src, _, dst) ->
      let dst = Term.Hashed.make dst in
      let existing =
        Option.value (Term.Tbl.find_opt predecessors dst) ~default:[]
      in
      Term.Tbl.replace predecessors dst (src :: existing))
    edges;
  let closure : hset = seeds in
  let queue = Queue.create () in
  Term.Tbl.iter (fun s () -> Queue.push s queue) closure;
  while not (Queue.is_empty queue) do
    let state = Queue.pop queue in
    List.iter
      (fun pred ->
        let pred = Term.Hashed.make pred in
        if not (hset_mem closure pred) then begin
          hset_add closure pred;
          Queue.push pred queue
        end)
      (Option.value (Term.Tbl.find_opt predecessors state) ~default:[])
  done;
  closure

let eventually ?max_states ?max_depth ?pool ?domains ~goal system ~init =
  let outcome =
    explore ?max_states ?max_depth ?pool ?domains ~want_edges:true system ~init
  in
  let visited = hset_of_list outcome.visited_order in
  let goals = hset_of_list (List.filter goal outcome.visited_order) in
  let goal_count = Term.Tbl.length goals in
  (* States whose forward cone may leave the explored set: any state with
     an edge to an unexplored target, plus everything that can reach such
     a state. For those no verdict is possible. *)
  let leaky : hset = Term.Tbl.create 64 in
  List.iter
    (fun (src, _, dst) ->
      if not (hset_mem visited (Term.Hashed.make dst)) then
        hset_add leaky (Term.Hashed.make src))
    outcome.edge_list;
  let can = backward_closure ~edges:outcome.edge_list ~seeds:goals in
  let may_escape = backward_closure ~edges:outcome.edge_list ~seeds:leaky in
  let cannot =
    List.filter
      (fun s ->
        let h = Term.Hashed.make s in
        (not (hset_mem can h)) && not (hset_mem may_escape h))
      outcome.visited_order
  in
  let undecided =
    Term.Tbl.fold
      (fun s () acc -> if hset_mem can s then acc else acc + 1)
      may_escape 0
  in
  {
    explored = Term.Tbl.length visited;
    goal_states = goal_count;
    can_reach = Term.Tbl.length can;
    (* Sorted, as the previous [Set.Make(Term)]-based implementation
       returned them — callers and tests may rely on the order. *)
    cannot_reach = List.sort Term.compare cannot;
    undecided;
  }

let deadlocks ?max_states ?max_depth ?pool ?domains system ~init =
  List.filter
    (fun state -> System.is_normal_form system state)
    (reachable ?max_states ?max_depth ?pool ?domains system ~init)

let escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?max_states ?max_depth ?(node_label = Term.to_string) system ~init =
  let init = Term.canonicalize init in
  let outcome = explore ?max_states ?max_depth ~want_edges:true system ~init in
  let id_table = Term.Tbl.create 64 in
  let next_id = ref 0 in
  let id_of state =
    let state = Term.Hashed.make state in
    match Term.Tbl.find_opt id_table state with
    | Some i -> i
    | None ->
        let i = !next_id in
        incr next_id;
        Term.Tbl.add id_table state i;
        i
  in
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "digraph states {\n  rankdir=LR;\n";
  List.iter
    (fun state ->
      let i = id_of state in
      Buffer.add_string buffer
        (Printf.sprintf "  s%d [label=\"%s\"%s];\n" i
           (escape (node_label state))
           (if Term.equal state init then " peripheries=2" else "")))
    outcome.visited_order;
  List.iter
    (fun (src, rule, dst) ->
      (* Only draw edges between visited states (the frontier may have
         been truncated). *)
      if
        Term.Tbl.mem id_table (Term.Hashed.make src)
        && Term.Tbl.mem id_table (Term.Hashed.make dst)
      then
        Buffer.add_string buffer
          (Printf.sprintf "  s%d -> s%d [label=\"%s\"];\n" (id_of src)
             (id_of dst) (escape rule)))
    outcome.edge_list;
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer
