(* Visited sets are hashtables keyed on terms with their structural hash
   cached at insertion time (Term.Hashed) — membership is a cached-int
   comparison plus, on collision, one structural equality, instead of the
   O(log n) full-term comparisons a [Set.Make(Term)] pays per step. *)
type hset = unit Term.Tbl.t

let hset_mem (set : hset) h = Term.Tbl.mem set h
let hset_add (set : hset) h = Term.Tbl.replace set h ()

type stats = {
  states : int;
  transitions : int;
  max_depth : int;
  truncated : bool;
}

type violation = { state : Term.t; depth : int; message : string }

type outcome = {
  visited_order : Term.t list;
  edge_list : (Term.t * string * Term.t) list;
  stats : stats;
  violations : violation list;
}

let explore ?(max_states = 100_000) ?max_depth
    ?(check = fun _ -> Ok ()) ?(want_edges = false) system ~init =
  let init = Term.canonicalize init in
  let queue = Queue.create () in
  Queue.push (init, 0) queue;
  let visited : hset = Term.Tbl.create 1024 in
  hset_add visited (Term.Hashed.make init);
  let rev_order = ref [ init ] in
  let rev_edges = ref [] in
  let violations = ref [] in
  let transitions = ref 0 in
  let deepest = ref 0 in
  let truncated = ref false in
  let within_depth depth =
    match max_depth with None -> true | Some d -> depth < d
  in
  let verify state depth =
    match check state with
    | Ok () -> ()
    | Error message -> violations := { state; depth; message } :: !violations
  in
  verify init 0;
  while not (Queue.is_empty queue) do
    let state, depth = Queue.pop queue in
    if depth > !deepest then deepest := depth;
    if within_depth depth then
      List.iter
        (fun (rule, _subst, next) ->
          incr transitions;
          if want_edges then
            rev_edges := (state, Rule.name rule, next) :: !rev_edges;
          let hnext = Term.Hashed.make next in
          if not (hset_mem visited hnext) then
            if Term.Tbl.length visited >= max_states then truncated := true
            else begin
              hset_add visited hnext;
              rev_order := next :: !rev_order;
              verify next (depth + 1);
              Queue.push (next, depth + 1) queue
            end)
        (System.instances system state)
    else truncated := true
  done;
  {
    visited_order = List.rev !rev_order;
    edge_list = List.rev !rev_edges;
    stats =
      {
        states = Term.Tbl.length visited;
        transitions = !transitions;
        max_depth = !deepest;
        truncated = !truncated;
      };
    violations = List.rev !violations;
  }

let bfs ?max_states ?max_depth ?check system ~init =
  let outcome = explore ?max_states ?max_depth ?check system ~init in
  (outcome.stats, outcome.violations)

let reachable ?max_states ?max_depth system ~init =
  (explore ?max_states ?max_depth system ~init).visited_order

let edges ?max_states ?max_depth system ~init =
  (explore ?max_states ?max_depth ~want_edges:true system ~init).edge_list

(* Alphabetical by rule name; ties (impossible for distinct registry
   names, but explicit anyway) break on the count. Deliberately not the
   polymorphic [Stdlib.compare] so the sort order is pinned by type. *)
let compare_rule_count (name_a, count_a) (name_b, count_b) =
  let c = String.compare name_a name_b in
  if c <> 0 then c else Int.compare count_a count_b

let rule_counts ?max_states ?max_depth system ~init =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (_, rule, _) ->
      Hashtbl.replace counts rule
        (1 + Option.value (Hashtbl.find_opt counts rule) ~default:0))
    (edges ?max_states ?max_depth system ~init);
  List.sort compare_rule_count
    (Hashtbl.fold (fun rule c acc -> (rule, c) :: acc) counts [])

type liveness_report = {
  explored : int;
  goal_states : int;
  can_reach : int;
  cannot_reach : Term.t list;
  undecided : int;
}

let hset_of_list states =
  let set : hset = Term.Tbl.create 256 in
  List.iter (fun s -> hset_add set (Term.Hashed.make s)) states;
  set

(* Backward closure of [seeds] over the (reversed) edge relation.
   Mutates and returns [seeds]. *)
let backward_closure ~edges ~seeds =
  let predecessors = Term.Tbl.create 256 in
  List.iter
    (fun (src, _, dst) ->
      let dst = Term.Hashed.make dst in
      let existing =
        Option.value (Term.Tbl.find_opt predecessors dst) ~default:[]
      in
      Term.Tbl.replace predecessors dst (src :: existing))
    edges;
  let closure : hset = seeds in
  let queue = Queue.create () in
  Term.Tbl.iter (fun s () -> Queue.push s queue) closure;
  while not (Queue.is_empty queue) do
    let state = Queue.pop queue in
    List.iter
      (fun pred ->
        let pred = Term.Hashed.make pred in
        if not (hset_mem closure pred) then begin
          hset_add closure pred;
          Queue.push pred queue
        end)
      (Option.value (Term.Tbl.find_opt predecessors state) ~default:[])
  done;
  closure

let eventually ?max_states ?max_depth ~goal system ~init =
  let outcome = explore ?max_states ?max_depth ~want_edges:true system ~init in
  let visited = hset_of_list outcome.visited_order in
  let goals = hset_of_list (List.filter goal outcome.visited_order) in
  let goal_count = Term.Tbl.length goals in
  (* States whose forward cone may leave the explored set: any state with
     an edge to an unexplored target, plus everything that can reach such
     a state. For those no verdict is possible. *)
  let leaky : hset = Term.Tbl.create 64 in
  List.iter
    (fun (src, _, dst) ->
      if not (hset_mem visited (Term.Hashed.make dst)) then
        hset_add leaky (Term.Hashed.make src))
    outcome.edge_list;
  let can = backward_closure ~edges:outcome.edge_list ~seeds:goals in
  let may_escape = backward_closure ~edges:outcome.edge_list ~seeds:leaky in
  let cannot =
    List.filter
      (fun s ->
        let h = Term.Hashed.make s in
        (not (hset_mem can h)) && not (hset_mem may_escape h))
      outcome.visited_order
  in
  let undecided =
    Term.Tbl.fold
      (fun s () acc -> if hset_mem can s then acc else acc + 1)
      may_escape 0
  in
  {
    explored = Term.Tbl.length visited;
    goal_states = goal_count;
    can_reach = Term.Tbl.length can;
    (* Sorted, as the previous [Set.Make(Term)]-based implementation
       returned them — callers and tests may rely on the order. *)
    cannot_reach = List.sort Term.compare cannot;
    undecided;
  }

let deadlocks ?max_states ?max_depth system ~init =
  List.filter
    (fun state -> System.is_normal_form system state)
    (reachable ?max_states ?max_depth system ~init)

let escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?max_states ?max_depth ?(node_label = Term.to_string) system ~init =
  let init = Term.canonicalize init in
  let outcome = explore ?max_states ?max_depth ~want_edges:true system ~init in
  let id_table = Term.Tbl.create 64 in
  let next_id = ref 0 in
  let id_of state =
    let state = Term.Hashed.make state in
    match Term.Tbl.find_opt id_table state with
    | Some i -> i
    | None ->
        let i = !next_id in
        incr next_id;
        Term.Tbl.add id_table state i;
        i
  in
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "digraph states {\n  rankdir=LR;\n";
  List.iter
    (fun state ->
      let i = id_of state in
      Buffer.add_string buffer
        (Printf.sprintf "  s%d [label=\"%s\"%s];\n" i
           (escape (node_label state))
           (if Term.equal state init then " peripheries=2" else "")))
    outcome.visited_order;
  List.iter
    (fun (src, rule, dst) ->
      (* Only draw edges between visited states (the frontier may have
         been truncated). *)
      if
        Term.Tbl.mem id_table (Term.Hashed.make src)
        && Term.Tbl.mem id_table (Term.Hashed.make dst)
      then
        Buffer.add_string buffer
          (Printf.sprintf "  s%d -> s%d [label=\"%s\"];\n" (id_of src)
             (id_of dst) (escape rule)))
    outcome.edge_list;
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer
