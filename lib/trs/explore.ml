module TSet = Set.Make (Term)

type stats = {
  states : int;
  transitions : int;
  max_depth : int;
  truncated : bool;
}

type violation = { state : Term.t; depth : int; message : string }

type outcome = {
  visited_order : Term.t list;
  edge_list : (Term.t * string * Term.t) list;
  stats : stats;
  violations : violation list;
}

let explore ?(max_states = 100_000) ?max_depth
    ?(check = fun _ -> Ok ()) ?(want_edges = false) system ~init =
  let init = Term.canonicalize init in
  let queue = Queue.create () in
  Queue.push (init, 0) queue;
  let visited = ref (TSet.singleton init) in
  let rev_order = ref [ init ] in
  let rev_edges = ref [] in
  let violations = ref [] in
  let transitions = ref 0 in
  let deepest = ref 0 in
  let truncated = ref false in
  let within_depth depth =
    match max_depth with None -> true | Some d -> depth < d
  in
  let verify state depth =
    match check state with
    | Ok () -> ()
    | Error message -> violations := { state; depth; message } :: !violations
  in
  verify init 0;
  while not (Queue.is_empty queue) do
    let state, depth = Queue.pop queue in
    if depth > !deepest then deepest := depth;
    if within_depth depth then
      List.iter
        (fun (rule, _subst, next) ->
          incr transitions;
          if want_edges then
            rev_edges := (state, Rule.name rule, next) :: !rev_edges;
          if not (TSet.mem next !visited) then
            if TSet.cardinal !visited >= max_states then truncated := true
            else begin
              visited := TSet.add next !visited;
              rev_order := next :: !rev_order;
              verify next (depth + 1);
              Queue.push (next, depth + 1) queue
            end)
        (System.instances system state)
    else truncated := true
  done;
  {
    visited_order = List.rev !rev_order;
    edge_list = List.rev !rev_edges;
    stats =
      {
        states = TSet.cardinal !visited;
        transitions = !transitions;
        max_depth = !deepest;
        truncated = !truncated;
      };
    violations = List.rev !violations;
  }

let bfs ?max_states ?max_depth ?check system ~init =
  let outcome = explore ?max_states ?max_depth ?check system ~init in
  (outcome.stats, outcome.violations)

let reachable ?max_states ?max_depth system ~init =
  (explore ?max_states ?max_depth system ~init).visited_order

let edges ?max_states ?max_depth system ~init =
  (explore ?max_states ?max_depth ~want_edges:true system ~init).edge_list

let rule_counts ?max_states ?max_depth system ~init =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (_, rule, _) ->
      Hashtbl.replace counts rule
        (1 + Option.value (Hashtbl.find_opt counts rule) ~default:0))
    (edges ?max_states ?max_depth system ~init);
  List.sort compare (Hashtbl.fold (fun rule c acc -> (rule, c) :: acc) counts [])

type liveness_report = {
  explored : int;
  goal_states : int;
  can_reach : int;
  cannot_reach : Term.t list;
  undecided : int;
}

(* Backward closure of [seeds] over the (reversed) edge relation. *)
let backward_closure ~edges ~seeds =
  let predecessors = Hashtbl.create 256 in
  List.iter
    (fun (src, _, dst) ->
      let existing =
        Option.value (Hashtbl.find_opt predecessors dst) ~default:[]
      in
      Hashtbl.replace predecessors dst (src :: existing))
    edges;
  let closure = ref seeds in
  let queue = Queue.create () in
  TSet.iter (fun s -> Queue.push s queue) seeds;
  while not (Queue.is_empty queue) do
    let state = Queue.pop queue in
    List.iter
      (fun pred ->
        if not (TSet.mem pred !closure) then begin
          closure := TSet.add pred !closure;
          Queue.push pred queue
        end)
      (Option.value (Hashtbl.find_opt predecessors state) ~default:[])
  done;
  !closure

let eventually ?max_states ?max_depth ~goal system ~init =
  let outcome = explore ?max_states ?max_depth ~want_edges:true system ~init in
  let visited = TSet.of_list outcome.visited_order in
  let goals = TSet.filter goal visited in
  (* States whose forward cone may leave the explored set: any state with
     an edge to an unexplored target, plus everything that can reach such
     a state. For those no verdict is possible. *)
  let leaky =
    List.fold_left
      (fun acc (src, _, dst) ->
        if TSet.mem dst visited then acc else TSet.add src acc)
      TSet.empty outcome.edge_list
  in
  let can = backward_closure ~edges:outcome.edge_list ~seeds:goals in
  let may_escape = backward_closure ~edges:outcome.edge_list ~seeds:leaky in
  let cannot =
    TSet.filter
      (fun s -> (not (TSet.mem s can)) && not (TSet.mem s may_escape))
      visited
  in
  let undecided =
    TSet.cardinal (TSet.filter (fun s -> not (TSet.mem s can)) may_escape)
  in
  {
    explored = TSet.cardinal visited;
    goal_states = TSet.cardinal goals;
    can_reach = TSet.cardinal can;
    cannot_reach = TSet.elements cannot;
    undecided;
  }

let deadlocks ?max_states ?max_depth system ~init =
  List.filter
    (fun state -> System.is_normal_form system state)
    (reachable ?max_states ?max_depth system ~init)

let escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?max_states ?max_depth ?(node_label = Term.to_string) system ~init =
  let init = Term.canonicalize init in
  let outcome = explore ?max_states ?max_depth ~want_edges:true system ~init in
  let ids = ref TSet.empty in
  let id_table = Hashtbl.create 64 in
  let next_id = ref 0 in
  let id_of state =
    match Hashtbl.find_opt id_table state with
    | Some i -> i
    | None ->
        let i = !next_id in
        incr next_id;
        Hashtbl.add id_table state i;
        ids := TSet.add state !ids;
        i
  in
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "digraph states {\n  rankdir=LR;\n";
  List.iter
    (fun state ->
      let i = id_of state in
      Buffer.add_string buffer
        (Printf.sprintf "  s%d [label=\"%s\"%s];\n" i
           (escape (node_label state))
           (if Term.equal state init then " peripheries=2" else "")))
    outcome.visited_order;
  List.iter
    (fun (src, rule, dst) ->
      (* Only draw edges between visited states (the frontier may have
         been truncated). *)
      if Hashtbl.mem id_table src && Hashtbl.mem id_table dst then
        Buffer.add_string buffer
          (Printf.sprintf "  s%d -> s%d [label=\"%s\"];\n" (id_of src)
             (id_of dst) (escape rule)))
    outcome.edge_list;
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer
