(** A term rewriting system: named rules plus reduction.

    [successors] is the one-step transition relation used by the explorer;
    [reduce] follows a single path under a strategy (the operational
    reading used by performance arguments). *)

type t

val make : name:string -> rules:Rule.t list -> t
val name : t -> string
val rules : t -> Rule.t list
val find_rule : t -> string -> Rule.t option

val instances : t -> Term.t -> (Rule.t * Subst.t * Term.t) list
(** Every applicable (rule, match, successor) triple, rules in declaration
    order. *)

val successors : t -> Term.t -> Term.t list
(** Distinct successor states (canonical, deduplicated). *)

val is_normal_form : t -> Term.t -> bool

val reduce :
  t -> strategy:Strategy.t -> init:Term.t -> steps:int -> Term.t list
(** The reduction path [init :: ...], at most [steps] rewrites, stopping
    early at a normal form. Each step fires the strategy-chosen instance. *)

val pp : Format.formatter -> t -> unit
