(** Textual syntax for terms.

    A compact ASCII grammar for writing patterns and states in tests,
    docs and the CLI:

    {v
    term  ::= INT                        integers
            | UIdent                     variable   (starts uppercase)
            | lident                     constant   (starts lowercase)
            | lident '(' term,* ')'      application
            | '_'                        wild card (the paper's '-')
            | '{' term ('|' term)* '}'   bag ('{}' is the empty bag)
            | '<' term,* '>'             sequence / history ('<>' empty)
            | '(' term,* ')'             tuple (1 element = grouping)
    v}

    Examples: [ "{Q | qent(x, d, b)}" ], [ "<datum(0,1), rot(0)>" ],
    [ "msg(0, 1, tok(<>))" ].

    The concrete syntax matches the convention of §2: capitalised
    identifiers are pattern variables, lower-case ones constants. *)

exception Parse_error of { position : int; message : string }

val term : string -> Term.t
(** @raise Parse_error on malformed input (position is a 0-based byte
    offset into the string). Bags are canonicalized. *)

val term_opt : string -> Term.t option
