(** Pattern matching modulo associativity–commutativity of bags.

    [all_matches ~pattern term] enumerates every substitution σ with
    [σ(pattern) = term] (up to AC). Bags make matching non-deterministic —
    the paper's rules select {e some} element of a set, e.g. [Q | (x,d_x)]
    — so a single pattern can match a state in many ways; exploration needs
    all of them.

    Pattern conventions (checked at match time):
    - In a bag pattern, at most one element may be a bare variable or
      wild-card; it matches {e the rest} of the bag (possibly empty). The
      remaining elements must each match distinct bag members.
    - [Wild] matches anything and binds nothing.
    - A variable occurring twice must match equal (AC-canonical) terms. *)

val all_matches : pattern:Term.t -> Term.t -> Subst.t list
(** All solutions, duplicates removed. The subject term must be ground.
    @raise Invalid_argument if the subject is not ground or a bag pattern
    has several rest variables. *)

val matches : pattern:Term.t -> Term.t -> Subst.t option
(** First solution, if any. *)

val is_instance : pattern:Term.t -> Term.t -> bool
