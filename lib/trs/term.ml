type t =
  | Const of string
  | Int of int
  | Var of string
  | Wild
  | App of string * t list
  | Bag of t list
  | Seq of t list

let rec compare a b =
  if a == b then 0
  else
    match (a, b) with
    | Const x, Const y -> String.compare x y
    | Const _, _ -> -1
    | _, Const _ -> 1
    | Int x, Int y -> Int.compare x y
    | Int _, _ -> -1
    | _, Int _ -> 1
    | Var x, Var y -> String.compare x y
    | Var _, _ -> -1
    | _, Var _ -> 1
    | Wild, Wild -> 0
    | Wild, _ -> -1
    | _, Wild -> 1
    | App (f, xs), App (g, ys) ->
        let c = String.compare f g in
        if c <> 0 then c else compare_lists xs ys
    | App _, _ -> -1
    | _, App _ -> 1
    | Bag xs, Bag ys -> compare_lists xs ys
    | Bag _, _ -> -1
    | _, Bag _ -> 1
    | Seq xs, Seq ys -> compare_lists xs ys

and compare_lists xs ys =
  if xs == ys then 0
  else
    match (xs, ys) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs', y :: ys' ->
        let c = compare x y in
        if c <> 0 then c else compare_lists xs' ys'

let equal a b = a == b || compare a b = 0

(* FNV-1a-style structural hash. Distinct constructor tags keep e.g.
   [Bag xs] and [Seq xs] apart; list folding keeps order significant, so
   only canonical (sorted) bags hash AC-consistently. *)
let hash_combine acc x = ((acc * 0x01000193) lxor x) land max_int

let rec hash = function
  | Const s -> hash_combine 0x11 (Hashtbl.hash s)
  | Int i -> hash_combine 0x22 i
  | Var v -> hash_combine 0x33 (Hashtbl.hash v)
  | Wild -> 0x44
  | App (f, args) -> hash_list (hash_combine 0x55 (Hashtbl.hash f)) args
  | Bag items -> hash_list 0x66 items
  | Seq items -> hash_list 0x77 items

and hash_list seed items =
  List.fold_left (fun acc t -> hash_combine acc (hash t)) seed items

(* [map_sharing f xs] is [List.map f xs] but returns [xs] itself when
   every element maps to itself physically — the backbone of the
   allocation-free path through [canonicalize]. *)
let rec map_sharing f xs =
  match xs with
  | [] -> xs
  | x :: tl ->
      let x' = f x in
      let tl' = map_sharing f tl in
      if x' == x && tl' == tl then xs else x' :: tl'

let rec is_sorted = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as tl) -> compare a b <= 0 && is_sorted tl

let rec canonicalize term =
  match term with
  | Const _ | Int _ | Var _ | Wild -> term
  | App (f, args) ->
      let args' = map_sharing canonicalize args in
      if args' == args then term else App (f, args')
  | Seq items ->
      let items' = map_sharing canonicalize items in
      if items' == items then term else Seq items'
  | Bag items ->
      let items' = map_sharing canonicalize items in
      if List.exists (function Bag _ -> true | _ -> false) items' then
        let flattened =
          List.concat_map
            (function Bag inner -> inner | other -> [ other ])
            items'
        in
        Bag (List.sort compare flattened)
      else if is_sorted items' then
        if items' == items then term else Bag items'
      else Bag (List.sort compare items')

let is_canonical term = canonicalize term == term

let tuple items = App ("tuple", items)
let pair a b = tuple [ a; b ]
let bag items = canonicalize (Bag items)
let seq items = Seq items
let phi x = App ("phi", [ Int x ])
let tau x = App ("tau", [ Int x ])
let datum x k = App ("datum", [ Int x; Int k ])
let rot x = App ("rot", [ Int x ])

let rec is_ground = function
  | Const _ | Int _ -> true
  | Var _ | Wild -> false
  | App (_, args) -> List.for_all is_ground args
  | Bag items | Seq items -> List.for_all is_ground items

let vars term =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec walk = function
    | Const _ | Int _ | Wild -> ()
    | Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          acc := v :: !acc
        end
    | App (_, args) -> List.iter walk args
    | Bag items | Seq items -> List.iter walk items
  in
  walk term;
  List.rev !acc

let rec size = function
  | Const _ | Int _ | Var _ | Wild -> 1
  | App (_, args) -> List.fold_left (fun n a -> n + size a) 1 args
  | Bag items | Seq items -> List.fold_left (fun n a -> n + size a) 1 items

let seq_append h d =
  match h with
  | Seq items -> (
      match d with
      | App ("phi", _) -> Seq items (* φ is the identity for ⊕ *)
      | Seq more -> Seq (items @ more) (* appending a composite datum *)
      | _ -> Seq (items @ [ d ]))
  | Const _ | Int _ | Var _ | Wild | App _ | Bag _ ->
      invalid_arg "Term.seq_append: left operand is not a history"

let seq_is_prefix a b =
  match (a, b) with
  | Seq xs, Seq ys ->
      let rec prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _ :: _, [] -> false
        | x :: xs', y :: ys' -> equal x y && prefix xs' ys'
      in
      prefix xs ys
  | _ -> invalid_arg "Term.seq_is_prefix: arguments must be histories"

let seq_project ~keep = function
  | Seq items -> Seq (List.filter keep items)
  | Const _ | Int _ | Var _ | Wild | App _ | Bag _ ->
      invalid_arg "Term.seq_project: argument must be a history"

let rec pp ppf = function
  | Const c -> Format.pp_print_string ppf c
  | Int i -> Format.pp_print_int ppf i
  | Var v -> Format.fprintf ppf "%s" v
  | Wild -> Format.pp_print_string ppf "-"
  | App ("tuple", args) ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun p () -> Format.fprintf p ", ") pp)
        args
  | App ("phi", [ Int x ]) -> Format.fprintf ppf "φ%d" x
  | App ("tau", [ Int x ]) -> Format.fprintf ppf "τ%d" x
  | App ("rot", [ Int x ]) -> Format.fprintf ppf "r%d" x
  | App ("datum", [ Int x; Int k ]) -> Format.fprintf ppf "d%d.%d" x k
  | App (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list ~pp_sep:(fun p () -> Format.fprintf p ", ") pp)
        args
  | Bag [] -> Format.pp_print_string ppf "ø"
  | Bag items ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list ~pp_sep:(fun p () -> Format.fprintf p " | ") pp)
        items
  | Seq [] -> Format.pp_print_string ppf "ε"
  | Seq items ->
      Format.fprintf ppf "⟨%a⟩"
        (Format.pp_print_list ~pp_sep:(fun p () -> Format.fprintf p "⊕") pp)
        items

let to_string term = Format.asprintf "%a" pp term

(* Hash-consing-lite: a term bundled with its structural hash, computed
   once on construction. State-space exploration keys its visited table
   on these, so membership tests cost one cached-int comparison plus (on
   hash collision only) one structural [equal] — instead of the
   O(log n) full-term comparisons of a [Set.Make(Term)]. *)
module Hashed = struct
  type nonrec t = { term : t; hash : int }

  let make term = { term; hash = hash term }
  let term h = h.term
  let hash h = h.hash
  let equal a b = a.hash = b.hash && equal a.term b.term
end

module Tbl = Hashtbl.Make (Hashed)
