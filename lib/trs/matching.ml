let is_rest_pattern = function Term.Var _ | Term.Wild -> true | _ -> false

let rec match_one pattern term subst =
  match (pattern, term) with
  | Term.Wild, _ -> [ subst ]
  | Term.Var v, _ -> (
      match Subst.find subst v with
      | Some bound ->
          if Term.equal (Term.canonicalize bound) (Term.canonicalize term) then
            [ subst ]
          else []
      | None -> [ Subst.bind subst v term ])
  | Term.Const c, Term.Const c' -> if String.equal c c' then [ subst ] else []
  | Term.Int i, Term.Int i' -> if i = i' then [ subst ] else []
  | Term.App (f, ps), Term.App (g, ts) ->
      if String.equal f g && List.length ps = List.length ts then
        match_list ps ts subst
      else []
  | Term.Seq ps, Term.Seq ts ->
      if List.length ps = List.length ts then match_list ps ts subst else []
  | Term.Bag ps, Term.Bag ts -> match_bag ps ts subst
  | (Term.Const _ | Term.Int _ | Term.App _ | Term.Seq _ | Term.Bag _), _ -> []

and match_list ps ts subst =
  match (ps, ts) with
  | [], [] -> [ subst ]
  | p :: ps', t :: ts' ->
      List.concat_map (fun s -> match_list ps' ts' s) (match_one p t subst)
  | _, _ -> []

and match_bag ps ts subst =
  let rests, elems = List.partition is_rest_pattern ps in
  match rests with
  | _ :: _ :: _ ->
      invalid_arg "Matching: bag pattern with several rest variables"
  | rest ->
      (* Match each element pattern against a distinct bag member, in all
         possible ways; what remains goes to the rest variable. *)
      let rec assign elems available subst =
        match elems with
        | [] -> finish rest available subst
        | p :: elems' ->
            List.concat_map
              (fun (chosen, others) ->
                List.concat_map
                  (fun s -> assign elems' others s)
                  (match_one p chosen subst))
              (selections available)
      in
      assign elems ts subst

and selections items =
  (* All ways to pick one element, returning (picked, rest). *)
  let rec go prefix = function
    | [] -> []
    | x :: rest -> (x, List.rev_append prefix rest) :: go (x :: prefix) rest
  in
  go [] items

and finish rest remaining subst =
  match rest with
  | [] -> if remaining = [] then [ subst ] else []
  | [ Term.Wild ] -> [ subst ]
  | [ Term.Var v ] -> (
      let value = Term.bag remaining in
      match Subst.find subst v with
      | Some bound ->
          if Term.equal (Term.canonicalize bound) value then [ subst ] else []
      | None -> [ Subst.bind subst v value ])
  | [ _ ] | _ :: _ :: _ -> assert false

let dedup substs =
  let rec go acc = function
    | [] -> List.rev acc
    | s :: rest ->
        if List.exists (Subst.equal s) acc then go acc rest
        else go (s :: acc) rest
  in
  go [] substs

let all_matches ~pattern term =
  if not (Term.is_ground term) then
    invalid_arg "Matching.all_matches: subject term must be ground";
  dedup (match_one pattern (Term.canonicalize term) Subst.empty)

let matches ~pattern term =
  match all_matches ~pattern term with [] -> None | s :: _ -> Some s

let is_instance ~pattern term = Option.is_some (matches ~pattern term)
