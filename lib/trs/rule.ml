type t = {
  name : string;
  lhs : Term.t;
  rhs : Term.t;
  guard : Subst.t -> bool;
  extend : Subst.t -> Subst.t list;
}

(* Replace wild-cards that occupy the same position on both sides with a
   shared fresh variable, so the matched value passes through unchanged.
   Pairing descends through tuples/applications and sequences of equal
   shape; it does not descend into bags (the paper only pairs wild-cards
   at the state-tuple level). *)
let freshen_wildcards lhs rhs =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Term.Var (Printf.sprintf "_w%d" !counter)
  in
  let rec walk l r =
    match (l, r) with
    | Term.Wild, Term.Wild ->
        let v = fresh () in
        (v, v)
    | Term.App (f, ls), Term.App (g, rs)
      when String.equal f g && List.length ls = List.length rs ->
        let pairs = List.map2 (fun a b -> walk a b) ls rs in
        (Term.App (f, List.map fst pairs), Term.App (g, List.map snd pairs))
    | Term.Seq ls, Term.Seq rs when List.length ls = List.length rs ->
        let pairs = List.map2 (fun a b -> walk a b) ls rs in
        (Term.Seq (List.map fst pairs), Term.Seq (List.map snd pairs))
    | _, _ -> (l, r)
  in
  walk lhs rhs

let rec rhs_has_wild = function
  | Term.Wild -> true
  | Term.Const _ | Term.Int _ | Term.Var _ -> false
  | Term.App (_, args) | Term.Bag args | Term.Seq args ->
      List.exists rhs_has_wild args

let make ?(guard = fun _ -> true) ?(extend = fun s -> [ s ]) ~name ~lhs ~rhs ()
    =
  let lhs, rhs = freshen_wildcards lhs rhs in
  if rhs_has_wild rhs then
    invalid_arg
      (Printf.sprintf "Rule.make(%s): unpaired wild-card on right-hand side"
         name);
  { name; lhs; rhs; guard; extend }

let name t = t.name
let lhs t = t.lhs
let rhs t = t.rhs

let instances t term =
  let matched = Matching.all_matches ~pattern:t.lhs term in
  List.concat_map
    (fun subst ->
      if not (t.guard subst) then []
      else
        List.filter_map
          (fun extended ->
            let result = Subst.apply extended t.rhs in
            if Term.is_ground result then
              Some (extended, Term.canonicalize result)
            else
              invalid_arg
                (Printf.sprintf
                   "Rule %s: instantiated right-hand side not ground: %s"
                   t.name (Term.to_string result)))
          (t.extend subst))
    matched

let applicable t term = instances t term <> []

let pp ppf t =
  Format.fprintf ppf "%s: %a → %a" t.name Term.pp t.lhs Term.pp t.rhs
