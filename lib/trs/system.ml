type t = { name : string; rules : Rule.t list }

let make ~name ~rules = { name; rules }
let name t = t.name
let rules t = t.rules

let find_rule t rule_name =
  List.find_opt (fun r -> String.equal (Rule.name r) rule_name) t.rules

let instances t term =
  List.concat_map
    (fun rule ->
      List.map (fun (subst, result) -> (rule, subst, result)) (Rule.instances rule term))
    t.rules

let successors t term =
  let results = List.map (fun (_, _, result) -> result) (instances t term) in
  List.sort_uniq Term.compare results

let is_normal_form t term = instances t term = []

let reduce t ~strategy ~init ~steps =
  let rec go state remaining acc =
    if remaining = 0 then List.rev acc
    else
      match instances t state with
      | [] -> List.rev acc
      | choices ->
          let i = Strategy.choose strategy ~count:(List.length choices) in
          let _, _, next = List.nth choices i in
          go next (remaining - 1) (next :: acc)
  in
  go (Term.canonicalize init) steps [ Term.canonicalize init ]

let pp ppf t =
  Format.fprintf ppf "system %s:@\n" t.name;
  List.iter (fun r -> Format.fprintf ppf "  %a@\n" Rule.pp r) t.rules
