(** Rewriting rules [lhs → rhs (if guard)].

    Beyond the paper's notation, a rule may carry an [extend] function that
    computes or enumerates bindings for right-hand-side variables not bound
    by the left-hand side — this is how "send to {e some} node [y]"
    non-determinism and derived values like [y = x⁺¹] or [u = x^(±n/2)]
    are expressed. An extension returning several substitutions yields
    several instances of the rule.

    The paper's wild-card convention — a ['-'] in the same position on both
    sides is left unchanged — is implemented by {!make}: positionally
    paired wild-cards are replaced by a shared fresh variable. *)

type t

val make :
  ?guard:(Subst.t -> bool) ->
  ?extend:(Subst.t -> Subst.t list) ->
  name:string ->
  lhs:Term.t ->
  rhs:Term.t ->
  unit ->
  t
(** @raise Invalid_argument if the right-hand side contains a wild-card
    with no positional partner on the left. *)

val name : t -> string
val lhs : t -> Term.t
val rhs : t -> Term.t

val instances : t -> Term.t -> (Subst.t * Term.t) list
(** All ways the rule applies to the (ground) term: match the left-hand
    side, filter by guard, apply extensions, instantiate. Results are
    canonical ground terms.
    @raise Invalid_argument if an instantiated right-hand side still
    contains variables (a spec bug: missing [extend]). *)

val applicable : t -> Term.t -> bool
val pp : Format.formatter -> t -> unit
