(** Bounded breadth-first exploration of a system's reachable states.

    This is the machine-checked counterpart of the paper's safety proofs:
    for small instances we enumerate {e every} reachable state and verify
    an invariant (e.g. the prefix property) on each, or collect the full
    transition relation for refinement checking.

    Two engines live behind one interface. With one domain and no spill
    directory the original sequential BFS runs. Otherwise a sharded
    layer-synchronous engine partitions the visited set across [domains]
    shards by cached structural hash and expands each BFS layer in
    parallel on [Tr_sim.Pool] domains — with a merge order chosen so the
    visited order, stats, rule counts, edge list and violation list are
    identical to the sequential engine for {e every} domain count. A
    spill mode streams frontier layers through temp files chunk by
    chunk and stores visited keys as 16-byte digests of the canonical
    form (hash compaction; collision odds ~1e-25 at 10^6 states),
    bounding resident memory for explorations of millions of states. *)

type stats = {
  states : int;  (** Distinct states visited. *)
  transitions : int;  (** Edges traversed (with duplicates). *)
  max_depth : int;  (** Deepest BFS layer reached. *)
  truncated : bool;  (** True if a bound stopped exploration early. *)
}

type violation = { state : Term.t; depth : int; message : string }

type perf = {
  wall_s : float;  (** Wall-clock seconds for the exploration. *)
  states_per_s : float;  (** [states /. wall_s] (0 for instant runs). *)
  domains_used : int;  (** Domains the exploration ran on. *)
  peak_rss_kb : int;
      (** Process peak RSS (VmHWM) sampled at the end of the run, in
          kB; 0 where /proc is unavailable. Process-wide and monotone
          unless {!reset_peak_rss} succeeded beforehand. *)
  spilled_layers : int;  (** Frontier layers written to disk. *)
  spilled_bytes : int;  (** Total bytes of spilled frontier frames. *)
}

type outcome = {
  visited_order : Term.t list;
      (** The visited set in BFS order ([] in spill mode, which does not
          retain terms). *)
  edge_list : (Term.t * string * Term.t) list;
      (** [(state, rule, successor)] in traversal order; populated only
          when [want_edges] was set. *)
  stats : stats;
  violations : violation list;
  perf : perf;
}

val explore :
  ?max_states:int ->
  ?max_depth:int ->
  ?check:(Term.t -> (unit, string) result) ->
  ?want_edges:bool ->
  ?pool:Tr_sim.Pool.t ->
  ?domains:int ->
  ?spill_dir:string ->
  ?spill_chunk:int ->
  System.t ->
  init:Term.t ->
  outcome
(** Explore from [init] (canonicalized). Defaults: [max_states =
    100_000], [max_depth] unbounded, [check] absent, [want_edges] false.

    Parallelism: [pool] lends an existing domain pool; [domains]
    overrides the shard/worker count (defaulting to the pool's size, or
    1). [domains > 1] without a pool spins up a private pool for the
    call. Results are deterministic and identical across all settings.

    Memory bounding: [spill_dir] switches to spill mode — frontier
    layers are written to temp files under that directory (removed as
    they are consumed) and read back [spill_chunk] states at a time
    (default 8192); the visited shards keep only per-state digests, and
    [visited_order] comes back empty. [want_edges] in spill mode raises
    [Invalid_argument]: retaining the edge terms would defeat the point.

    Exploration continues past violations so a run reports them all (up
    to the bounds). *)

val bfs :
  ?max_states:int ->
  ?max_depth:int ->
  ?check:(Term.t -> (unit, string) result) ->
  ?pool:Tr_sim.Pool.t ->
  ?domains:int ->
  ?spill_dir:string ->
  System.t ->
  init:Term.t ->
  stats * violation list
(** [explore] restricted to the stats and violations. *)

val reachable :
  ?max_states:int ->
  ?max_depth:int ->
  ?pool:Tr_sim.Pool.t ->
  ?domains:int ->
  System.t ->
  init:Term.t ->
  Term.t list
(** The visited set, in BFS order. *)

val edges :
  ?max_states:int ->
  ?max_depth:int ->
  ?pool:Tr_sim.Pool.t ->
  ?domains:int ->
  System.t ->
  init:Term.t ->
  (Term.t * string * Term.t) list
(** The traversed labelled transition relation [(state, rule, successor)],
    restricted to visited source states. *)

val rule_counts :
  ?max_states:int ->
  ?max_depth:int ->
  ?pool:Tr_sim.Pool.t ->
  ?domains:int ->
  System.t ->
  init:Term.t ->
  (string * int) list
(** How many explored transitions each rule contributed, sorted by rule
    name. A rule missing from the list never fired — dead rules in a
    specification are almost always encoding mistakes, so tests assert
    full coverage. *)

(** {1 Process introspection} *)

val peak_rss_kb : unit -> int
(** Current VmHWM of this process in kB (0 where /proc is unavailable). *)

val reset_peak_rss : unit -> bool
(** Reset the kernel's peak-RSS water mark (Linux [/proc/self/clear_refs])
    so successive {!peak_rss_kb} readings are independent. Returns
    [false] where unsupported — readings are then a process-lifetime
    high-water mark. *)

(** {1 Liveness} *)

type liveness_report = {
  explored : int;  (** States considered. *)
  goal_states : int;  (** States satisfying the goal directly. *)
  can_reach : int;  (** States with a path to a goal state. *)
  cannot_reach : Term.t list;
      (** Definite livelocks: states whose {e entire} forward cone lies
          inside the explored set and never meets the goal (includes
          goal-less normal forms). Empty list = the property holds on the
          explored portion. *)
  undecided : int;
      (** States whose forward cone leaves the explored set (frontier
          effects); no verdict for these. *)
}

val eventually :
  ?max_states:int ->
  ?max_depth:int ->
  ?pool:Tr_sim.Pool.t ->
  ?domains:int ->
  goal:(Term.t -> bool) ->
  System.t ->
  init:Term.t ->
  liveness_report
(** Bounded check of "from every reachable state, a goal state remains
    reachable" (the AG EF pattern — e.g. "the token can always still get
    to node 1"). Sound for the states it decides: a state in
    [cannot_reach] really cannot reach the goal; [undecided] states got
    no verdict because exploration was truncated around them. *)

val deadlocks :
  ?max_states:int ->
  ?max_depth:int ->
  ?pool:Tr_sim.Pool.t ->
  ?domains:int ->
  System.t ->
  init:Term.t ->
  Term.t list
(** Reachable normal forms (no rule applicable). The paper's systems with
    non-exhausted budgets should have none — the token can always move. *)

val to_dot :
  ?max_states:int ->
  ?max_depth:int ->
  ?node_label:(Term.t -> string) ->
  System.t ->
  init:Term.t ->
  string
(** Graphviz rendering of the explored transition system: one node per
    state (default label: the pretty-printed term), one edge per rule
    application, the initial state drawn doubled. Useful for visually
    inspecting small instances of the paper's systems. *)
