(** Bounded breadth-first exploration of a system's reachable states.

    This is the machine-checked counterpart of the paper's safety proofs:
    for small instances we enumerate {e every} reachable state and verify
    an invariant (e.g. the prefix property) on each, or collect the full
    transition relation for refinement checking. *)

type stats = {
  states : int;  (** Distinct states visited. *)
  transitions : int;  (** Edges traversed (with duplicates). *)
  max_depth : int;  (** Deepest BFS layer reached. *)
  truncated : bool;  (** True if a bound stopped exploration early. *)
}

type violation = { state : Term.t; depth : int; message : string }

val bfs :
  ?max_states:int ->
  ?max_depth:int ->
  ?check:(Term.t -> (unit, string) result) ->
  System.t ->
  init:Term.t ->
  stats * violation list
(** Explore from [init] (canonicalized). Defaults: [max_states = 100_000],
    [max_depth] unbounded, [check] always [Ok]. Exploration continues past
    violations so a run reports them all (up to the bounds). *)

val reachable :
  ?max_states:int -> ?max_depth:int -> System.t -> init:Term.t -> Term.t list
(** The visited set, in BFS order. *)

val edges :
  ?max_states:int ->
  ?max_depth:int ->
  System.t ->
  init:Term.t ->
  (Term.t * string * Term.t) list
(** The traversed labelled transition relation [(state, rule, successor)],
    restricted to visited source states. *)

val rule_counts :
  ?max_states:int -> ?max_depth:int -> System.t -> init:Term.t -> (string * int) list
(** How many explored transitions each rule contributed, sorted by rule
    name. A rule missing from the list never fired — dead rules in a
    specification are almost always encoding mistakes, so tests assert
    full coverage. *)

(** {1 Liveness} *)

type liveness_report = {
  explored : int;  (** States considered. *)
  goal_states : int;  (** States satisfying the goal directly. *)
  can_reach : int;  (** States with a path to a goal state. *)
  cannot_reach : Term.t list;
      (** Definite livelocks: states whose {e entire} forward cone lies
          inside the explored set and never meets the goal (includes
          goal-less normal forms). Empty list = the property holds on the
          explored portion. *)
  undecided : int;
      (** States whose forward cone leaves the explored set (frontier
          effects); no verdict for these. *)
}

val eventually :
  ?max_states:int ->
  ?max_depth:int ->
  goal:(Term.t -> bool) ->
  System.t ->
  init:Term.t ->
  liveness_report
(** Bounded check of "from every reachable state, a goal state remains
    reachable" (the AG EF pattern — e.g. "the token can always still get
    to node 1"). Sound for the states it decides: a state in
    [cannot_reach] really cannot reach the goal; [undecided] states got
    no verdict because exploration was truncated around them. *)

val deadlocks :
  ?max_states:int -> ?max_depth:int -> System.t -> init:Term.t -> Term.t list
(** Reachable normal forms (no rule applicable). The paper's systems with
    non-exhausted budgets should have none — the token can always move. *)

val to_dot :
  ?max_states:int ->
  ?max_depth:int ->
  ?node_label:(Term.t -> string) ->
  System.t ->
  init:Term.t ->
  string
(** Graphviz rendering of the explored transition system: one node per
    state (default label: the pretty-printed term), one edge per rule
    application, the initial state drawn doubled. Useful for visually
    inspecting small instances of the paper's systems. *)
