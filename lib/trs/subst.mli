(** Variable bindings produced by pattern matching.

    A substitution maps variable names to ground terms. Application
    replaces variables and evaluates history appends ([App ("append", _)])
    so instantiated right-hand sides are fully normalized terms. *)

type t

val empty : t
val is_empty : t -> bool
val bind : t -> string -> Term.t -> t
(** Overrides any previous binding for the name. *)

val find : t -> string -> Term.t option
val find_exn : t -> string -> Term.t
(** @raise Not_found when unbound. *)

val find_int : t -> string -> int
(** Convenience for guards: the binding must be an [Int].
    @raise Invalid_argument otherwise. *)

val mem : t -> string -> bool
val bindings : t -> (string * Term.t) list
(** Sorted by variable name. *)

val merge_consistent : t -> t -> t option
(** Union when the two agree on every shared variable, [None] otherwise. *)

val apply : t -> Term.t -> Term.t
(** Instantiate: replace bound variables, evaluate [append(h, d)] nodes
    into sequence appends, canonicalize bags. Unbound variables and
    wild-cards are left in place (callers check groundness).
    @raise Invalid_argument if an [append] left operand is not a history
    after substitution. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
