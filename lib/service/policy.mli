(** Online ring ↔ binary-search switching.

    The paper's Figure 10 shows the crossover offline: rotating the
    token beats request-driven binary search once the request arrival
    rate per token revolution passes a threshold near one, and loses
    well below it. This module runs that comparison {e online}: the
    server feeds it every injected request, it estimates the arrival
    rate over a sliding window, normalises to requests per revolution
    ([rate × n × hop]), and flips the cluster's movement mode through a
    hysteresis band ([hi] → Rotate, [lo] → Search; [hi > lo] so load
    noise near the crossover cannot make the token thrash).

    In Search mode the directive also carries [park_after] — §4.4's
    adaptive token speed: an idle token parks after a bounded number of
    idle hops instead of circulating forever.

    Thread model: {!note_request} and {!tick} take an internal mutex;
    {!directive} reads a single [Atomic] and is safe to call from every
    shard domain on every token dispatch. Call {!tick} from the report
    loop so a ramp {e down} to zero load still closes windows (no
    requests means {!note_request} never fires). *)

open Tr_apps

type config = {
  n : int;  (** Ring size, for the per-revolution normalisation. *)
  hop_s : float;  (** One-hop latency estimate (the cluster's hop delay). *)
  window_s : float;  (** Rate-estimation window length. *)
  hi : float;  (** Switch Search→Rotate at ≥ [hi] requests/revolution. *)
  lo : float;  (** Switch Rotate→Search at ≤ [lo] requests/revolution. *)
  park_after : int option;  (** Idle-hop park bound while in Search mode. *)
  initial : Movement.mode;
}

val default_config : n:int -> hop_s:float -> config
(** Window of ten token revolutions ([10 × n × hop] — clock-agnostic:
    all times here are in whatever clock [now] values use, time units on
    the live cluster), band \[0.75, 2.0\] requests/revolution around the
    paper's crossover, park after [2n] idle hops, start in Search. *)

type switch_event = {
  at : float;  (** Wall-clock time of the switch. *)
  from_mode : Movement.mode;
  to_mode : Movement.mode;
  per_rev : float;  (** The estimate that triggered it. *)
}

type t

val create : config -> t
(** Raises [Invalid_argument] unless [hi > lo]. *)

val note_request : t -> now:float -> unit
(** One client request entered the cluster. *)

val tick : t -> now:float -> unit
(** Close the window if overdue; call periodically from the reporter. *)

val mode : t -> Movement.mode
val directive : t -> unit -> Movement.directive
val per_rev : t -> float
(** Last completed window's requests-per-revolution estimate. *)

val switches : t -> switch_event list
(** All switch events so far, oldest first. *)
