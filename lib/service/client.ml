module Readiness = Tr_net_rt.Readiness
module Frame = Tr_wire.Frame
module Codec = Tr_wire.Codec
module Network = Tr_sim.Network

external fd_int : Unix.file_descr -> int = "%identity"

type workload =
  | Closed of { think_s : float }
  | Open of { rate : float }

type phase = { duration_s : float; workload : workload }

type config = {
  connect : Unix.sockaddr;
  clients : int;
  conns : int;
  app : Server.app;
  phases : phase list;
  seed : int;
  report_every_s : float;
  drain_s : float;
  verbose : bool;
}

let default_config ~connect ~clients =
  {
    connect;
    clients;
    conns = max 1 (min clients 8);
    app = Server.Mutex;
    phases = [ { duration_s = 5.0; workload = Closed { think_s = 0.0 } } ];
    seed = 1;
    report_every_s = 1.0;
    drain_s = 3.0;
    verbose = false;
  }

let validate cfg =
  if cfg.clients <= 0 then invalid_arg "Client.run: need at least one client";
  if cfg.conns <= 0 || cfg.conns > cfg.clients then
    invalid_arg "Client.run: need 1 <= conns <= clients";
  if cfg.phases = [] then invalid_arg "Client.run: need at least one phase";
  List.iter
    (fun p ->
      if p.duration_s <= 0. then
        invalid_arg "Client.run: phase durations must be positive";
      match p.workload with
      | Closed { think_s } ->
          if think_s < 0. then invalid_arg "Client.run: negative think time"
      | Open { rate } ->
          if rate <= 0. then
            invalid_arg "Client.run: open-loop rate must be positive")
    cfg.phases

type result = {
  seed : int;  (** The run's RNG seed, echoed for provenance. *)
  sent : int;
  welcomes : int;
  grants : int;
  releaseds : int;
  committeds : int;
  rejects : int;
  decode_errors : int;
  resync_skips : int;
  conn_failures : int;
  outstanding : int;  (** Requests still unanswered when the run ended. *)
  slo : Slo.snapshot;
  phase_slos : (phase * Slo.snapshot) list;
}

(* Pending client sends, keyed by due wall time: a flat binary min-heap
   (the stdlib has none). Closed-loop think timers and nothing else, so
   it stays small — but jittered thinks make insertion order arbitrary. *)
module Heap = struct
  type t = {
    mutable a : (float * int) array;
    mutable len : int;
  }

  let create () = { a = Array.make 64 (0., 0); len = 0 }
  let swap h i j =
    let t = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- t

  let push h due v =
    if h.len = Array.length h.a then begin
      let grown = Array.make (2 * h.len) (0., 0) in
      Array.blit h.a 0 grown 0 h.len;
      h.a <- grown
    end;
    h.a.(h.len) <- (due, v);
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      fst h.a.(p) > fst h.a.(!i)
    do
      let p = (!i - 1) / 2 in
      swap h !i p;
      i := p
    done

  let peek h = if h.len = 0 then None else Some h.a.(0)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && fst h.a.(l) < fst h.a.(!smallest) then smallest := l;
        if r < h.len && fst h.a.(r) < fst h.a.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done;
      Some top
    end

  let clear h = h.len <- 0
end

type conn = {
  fd : Unix.file_descr;
  key : int;
  dec : Frame.Decoder.t;
  mutable out : Bytes.t;
  mutable out_pos : int;
  mutable out_len : int;
  mutable alive : bool;
}

let queued c = c.out_len - c.out_pos

let ensure_capacity c extra =
  if c.out_len + extra > Bytes.length c.out then begin
    if c.out_pos > 0 then begin
      let live = queued c in
      Bytes.blit c.out c.out_pos c.out 0 live;
      c.out_pos <- 0;
      c.out_len <- live
    end;
    let need = c.out_len + extra in
    if need > Bytes.length c.out then begin
      let cap = ref (Bytes.length c.out) in
      while !cap < need do
        cap := !cap * 2
      done;
      let grown = Bytes.create !cap in
      Bytes.blit c.out 0 grown 0 c.out_len;
      c.out <- grown
    end
  end

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let run cfg =
  validate cfg;
  let slo = Slo.create () in
  (* One accumulator per configured phase: a response always lands in
     the phase that ISSUED the request (carried through [in_flight]),
     not whichever phase is current when the response arrives — the
     tail of an overloaded ramp step is charged to that step. *)
  let nphases = List.length cfg.phases in
  let phase_slos = Array.init nphases (fun _ -> Slo.create ()) in
  let cur_phase = ref 0 in
  let sent = ref 0
  and welcomes = ref 0
  and grants = ref 0
  and releaseds = ref 0
  and committeds = ref 0
  and rejects = ref 0
  and decode_errors = ref 0
  and resync_skips = ref 0
  and conn_failures = ref 0 in
  let rng = Random.State.make [| cfg.seed; 0x10adc11 |] in
  (* Connect synchronously (UDS / loopback), then go non-blocking. *)
  let conns =
    Array.init cfg.conns (fun _ ->
        let fd =
          Unix.socket (Unix.domain_of_sockaddr cfg.connect) Unix.SOCK_STREAM 0
        in
        (try Unix.connect fd cfg.connect
         with e ->
           close_quietly fd;
           raise e);
        Unix.set_nonblock fd;
        (match cfg.connect with
        | Unix.ADDR_INET _ -> (
            try Unix.setsockopt fd Unix.TCP_NODELAY true
            with Unix.Unix_error _ -> ())
        | Unix.ADDR_UNIX _ -> ());
        {
          fd;
          key = fd_int fd;
          dec = Frame.Decoder.create ();
          out = Bytes.create 4096;
          out_pos = 0;
          out_len = 0;
          alive = true;
        })
  in
  let rd = Readiness.create () in
  let by_key = Hashtbl.create (2 * cfg.conns) in
  Array.iter
    (fun c ->
      Hashtbl.replace by_key c.key c;
      Readiness.set rd c.fd ~read:true ~write:false)
    conns;
  let conn_of_client client = conns.(client mod cfg.conns) in
  let drop_conn c =
    if c.alive then begin
      c.alive <- false;
      incr conn_failures;
      Readiness.remove rd c.fd;
      close_quietly c.fd;
      Hashtbl.remove by_key c.key
    end
  in
  let interest c =
    if c.alive then Readiness.set rd c.fd ~read:true ~write:(queued c > 0)
  in
  let flush_conn c =
    let continue = ref true in
    while !continue && c.alive && queued c > 0 do
      match Unix.write c.fd c.out c.out_pos (queued c) with
      | 0 -> continue := false
      | written ->
          c.out_pos <- c.out_pos + written;
          if queued c = 0 then begin
            c.out_pos <- 0;
            c.out_len <- 0
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) ->
          drop_conn c;
          continue := false
    done;
    interest c
  in
  let scratch = Codec.scratch () in
  let send_request client req =
    let c = conn_of_client client in
    if c.alive then begin
      let buf =
        Codec.encode_frame scratch Service_wire.request_codec ~src:client
          ~channel:Network.Reliable req
      in
      let len = Buffer.length buf in
      ensure_capacity c len;
      Buffer.blit buf 0 c.out c.out_len len;
      c.out_len <- c.out_len + len;
      interest c
    end
  in
  (* Per-client sequencing and in-flight bookkeeping. The latency table
     maps (client, seq) to send wall time; completion is Grant for the
     mutex app and Committed for total order. *)
  let next_seq = Array.make cfg.clients 0 in
  let in_flight : (int * int, float * int) Hashtbl.t =
    Hashtbl.create (4 * cfg.clients)
  in
  let idle = Array.make cfg.clients true in
  let fire client =
    let seq = next_seq.(client) in
    next_seq.(client) <- seq + 1;
    Hashtbl.replace in_flight (client, seq) (Unix.gettimeofday (), !cur_phase);
    Slo.note_started slo;
    Slo.note_started phase_slos.(!cur_phase);
    incr sent;
    idle.(client) <- false;
    match cfg.app with
    | Server.Mutex -> send_request client (Service_wire.Acquire { client; seq })
    | Server.Total_order ->
        send_request client (Service_wire.Publish { client; seq; payload = "" })
  in
  let thinks = Heap.create () in
  let complete ~kind client seq =
    match Hashtbl.find_opt in_flight (client, seq) with
    | None -> ()
    | Some (t0, issued_phase) ->
        Hashtbl.remove in_flight (client, seq);
        let d = Unix.gettimeofday () -. t0 in
        Slo.note_latency slo ~kind d;
        Slo.note_latency phase_slos.(issued_phase) ~kind d
  in
  (* Mutable workload state, advanced by [roll_phases]. *)
  let phases = ref cfg.phases in
  let phase_end = ref 0. in
  let sending = ref true in
  let next_arrival = ref infinity in
  let open_rate = ref 0. in
  let rr = ref 0 in
  let start_phase now p =
    phase_end := now +. p.duration_s;
    match p.workload with
    | Closed { think_s = _ } ->
        next_arrival := infinity;
        open_rate := 0.;
        Heap.clear thinks;
        for client = 0 to cfg.clients - 1 do
          if idle.(client) then fire client
        done
    | Open { rate } ->
        Heap.clear thinks;
        open_rate := rate;
        next_arrival := now
  in
  let think_of_phase () =
    match !phases with
    | { workload = Closed { think_s }; _ } :: _ -> Some think_s
    | _ -> None
  in
  let roll_phases now =
    if now >= !phase_end then begin
      match !phases with
      | [] | [ _ ] ->
          phases := [];
          sending := false;
          next_arrival := infinity;
          Heap.clear thinks
      | _ :: (p :: _ as rest) ->
          phases := rest;
          incr cur_phase;
          start_phase now p
    end
  in
  let on_completion client =
    idle.(client) <- true;
    if !sending then
      match think_of_phase () with
      | Some think_s ->
          if think_s <= 0. then fire client
          else Heap.push thinks (Unix.gettimeofday () +. think_s) client
      | None -> ()
  in
  let handle_response (resp : Service_wire.response) =
    match resp with
    | Service_wire.Welcome _ -> incr welcomes
    | Service_wire.Grant { client; seq } ->
        incr grants;
        complete ~kind:`Grant client seq;
        (match cfg.app with
        | Server.Mutex -> send_request client (Service_wire.Release { client; seq })
        | Server.Total_order -> ())
    | Service_wire.Released { client; seq = _ } ->
        incr releaseds;
        if cfg.app = Server.Mutex then on_completion client
    | Service_wire.Committed { client; seq; global_seq = _ } ->
        incr committeds;
        complete ~kind:`Commit client seq;
        if cfg.app = Server.Total_order then on_completion client
    | Service_wire.Rejected { client; seq; reason = _ } ->
        incr rejects;
        Slo.note_reject slo;
        (match Hashtbl.find_opt in_flight (client, seq) with
        | Some (_, issued_phase) -> Slo.note_reject phase_slos.(issued_phase)
        | None -> ());
        Hashtbl.remove in_flight (client, seq);
        on_completion client
  in
  let pump_decoder c =
    let continue = ref true in
    while !continue && c.alive do
      match Frame.Decoder.next_view c.dec with
      | Frame.Decoder.Await_view -> continue := false
      | Frame.Decoder.Skip_view _ -> incr resync_skips
      | Frame.Decoder.View v -> (
          match Codec.decode_view Service_wire.response_codec v with
          | Ok env -> handle_response env.Codec.msg
          | Error _ -> incr decode_errors)
    done
  in
  let readbuf = Bytes.create 65536 in
  let read_conn c =
    let continue = ref true in
    while !continue && c.alive do
      match Unix.read c.fd readbuf 0 (Bytes.length readbuf) with
      | 0 ->
          drop_conn c;
          continue := false
      | len ->
          Frame.Decoder.feed_sub c.dec readbuf ~pos:0 ~len;
          pump_decoder c
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) ->
          drop_conn c;
          continue := false
    done
  in
  (* Session handshake: one Hello per client so the server binds every
     session before load starts. *)
  for client = 0 to cfg.clients - 1 do
    send_request client (Service_wire.Hello { client })
  done;
  let t0 = Unix.gettimeofday () in
  (match cfg.phases with p :: _ -> start_phase t0 p | [] -> assert false);
  let next_report = ref (t0 +. cfg.report_every_s) in
  let last_grants = ref 0 and last_commits = ref 0 in
  let drain_deadline = ref infinity in
  let ready = ref [] in
  let finished () =
    (not !sending)
    && (Hashtbl.length in_flight = 0 || Unix.gettimeofday () >= !drain_deadline)
  in
  let live_conns () = Array.exists (fun c -> c.alive) conns in
  while (not (finished ())) && live_conns () do
    let now = Unix.gettimeofday () in
    (* Fire everything due: open-loop arrivals and expired thinks. *)
    if !sending then begin
      roll_phases now;
      if !sending then begin
        while !next_arrival <= now do
          fire !rr;
          rr := (!rr + 1) mod cfg.clients;
          let gap = -.log (1. -. Random.State.float rng 1.) /. !open_rate in
          next_arrival := !next_arrival +. gap
        done;
        let expired = ref true in
        while !expired do
          match Heap.peek thinks with
          | Some (due, client) when due <= now ->
              ignore (Heap.pop thinks);
              fire client
          | _ -> expired := false
        done
      end
      else drain_deadline := now +. cfg.drain_s
    end;
    let next_due =
      List.fold_left Float.min infinity
        [
          !next_report;
          !next_arrival;
          (if !sending then !phase_end else !drain_deadline);
          (match Heap.peek thinks with Some (due, _) -> due | None -> infinity);
        ]
    in
    let timeout_s = Float.max 0.001 (Float.min 0.25 (next_due -. now)) in
    ready := [];
    ignore
      (Readiness.wait rd ~timeout_s (fun ~fd ~readable ~writable ->
           ready := (fd, readable, writable) :: !ready));
    List.iter
      (fun (fd, readable, writable) ->
        match Hashtbl.find_opt by_key fd with
        | None -> ()
        | Some c ->
            if writable then flush_conn c;
            if readable && c.alive then read_conn c)
      (List.rev !ready);
    let now = Unix.gettimeofday () in
    if now >= !next_report then begin
      next_report := now +. cfg.report_every_s;
      if cfg.verbose then begin
        let s = Slo.snapshot slo in
        let dg = !grants - !last_grants and dc = !committeds - !last_commits in
        last_grants := !grants;
        last_commits := !committeds;
        let ms v = Format.asprintf "%a" Slo.pp_ms v in
        Printf.printf
          "[loadgen] t=%.1fs sent=%d in_flight=%d grants=%d (+%d/s) \
           committed=%d (+%d/s) rejects=%d p50=%s p99=%s p999=%s\n\
           %!"
          (now -. t0) !sent (Hashtbl.length in_flight) !grants
          (int_of_float (float_of_int dg /. cfg.report_every_s))
          !committeds
          (int_of_float (float_of_int dc /. cfg.report_every_s))
          !rejects (ms s.Slo.p50) (ms s.Slo.p99) (ms s.Slo.p999)
      end
    end
  done;
  Array.iter
    (fun c ->
      if c.alive then begin
        Readiness.remove rd c.fd;
        close_quietly c.fd
      end)
    conns;
  Readiness.close rd;
  let phase_snaps =
    List.mapi (fun i p -> (p, Slo.snapshot phase_slos.(i))) cfg.phases
  in
  if cfg.verbose && nphases > 1 then
    List.iteri
      (fun i ((p : phase), (s : Slo.snapshot)) ->
        let ms v = Format.asprintf "%a" Slo.pp_ms v in
        Printf.printf
          "[loadgen] phase %d (%s, %.1fs): started=%d done=%d rejects=%d \
           p50=%s p99=%s p999=%s\n\
           %!"
          i
          (match p.workload with
          | Closed { think_s } -> Printf.sprintf "closed think=%gs" think_s
          | Open { rate } -> Printf.sprintf "open %g req/s" rate)
          p.duration_s s.Slo.started s.Slo.samples s.Slo.rejects
          (ms s.Slo.p50) (ms s.Slo.p99) (ms s.Slo.p999))
      phase_snaps;
  {
    seed = cfg.seed;
    sent = !sent;
    welcomes = !welcomes;
    grants = !grants;
    releaseds = !releaseds;
    committeds = !committeds;
    rejects = !rejects;
    decode_errors = !decode_errors;
    resync_skips = !resync_skips;
    conn_failures = !conn_failures;
    outstanding = Hashtbl.length in_flight;
    slo = Slo.snapshot slo;
    phase_slos = phase_snaps;
  }

let result_json (r : result) =
  let open Tr_net_rt.Live_export in
  let s = r.slo in
  obj
    [
      ("kind", json_string "loadgen");
      ("seed", string_of_int r.seed);
      ("sent", string_of_int r.sent);
      ("grants", string_of_int r.grants);
      ("releaseds", string_of_int r.releaseds);
      ("committeds", string_of_int r.committeds);
      ("rejects", string_of_int r.rejects);
      ("decode_errors", string_of_int r.decode_errors);
      ("resync_skips", string_of_int r.resync_skips);
      ("conn_failures", string_of_int r.conn_failures);
      ("outstanding", string_of_int r.outstanding);
      ("latency_samples", string_of_int s.Slo.samples);
      ("mean_s", json_float s.Slo.mean);
      ("p50_s", json_float s.Slo.p50);
      ("p99_s", json_float s.Slo.p99);
      ("p999_s", json_float s.Slo.p999);
      ( "phases",
        "["
        ^ String.concat ","
            (List.map
               (fun ((p : phase), (ps : Slo.snapshot)) ->
                 obj
                   [
                     ( "workload",
                       json_string
                         (match p.workload with
                         | Closed { think_s } ->
                             Printf.sprintf "closed think=%g" think_s
                         | Open { rate } -> Printf.sprintf "open rate=%g" rate)
                     );
                     ("duration_s", json_float p.duration_s);
                     ("started", string_of_int ps.Slo.started);
                     ("samples", string_of_int ps.Slo.samples);
                     ("grants", string_of_int ps.Slo.grants);
                     ("commits", string_of_int ps.Slo.commits);
                     ("rejects", string_of_int ps.Slo.rejects);
                     ("mean_s", json_float ps.Slo.mean);
                     ("p50_s", json_float ps.Slo.p50);
                     ("p99_s", json_float ps.Slo.p99);
                     ("p999_s", json_float ps.Slo.p999);
                   ])
               r.phase_slos)
        ^ "]" );
    ]
