open Tr_wire

type request =
  | Hello of { client : int }
  | Acquire of { client : int; seq : int }
  | Release of { client : int; seq : int }
  | Publish of { client : int; seq : int; payload : string }

type response =
  | Welcome of { client : int; node : int }
  | Grant of { client : int; seq : int }
  | Released of { client : int; seq : int }
  | Committed of { client : int; seq : int; global_seq : int }
  | Rejected of { client : int; seq : int; reason : string }

let request_label = function
  | Hello { client } -> Printf.sprintf "hello(c=%d)" client
  | Acquire { client; seq } -> Printf.sprintf "acquire(c=%d s=%d)" client seq
  | Release { client; seq } -> Printf.sprintf "release(c=%d s=%d)" client seq
  | Publish { client; seq; payload } ->
      Printf.sprintf "publish(c=%d s=%d |%d|)" client seq (String.length payload)

let response_label = function
  | Welcome { client; node } -> Printf.sprintf "welcome(c=%d n=%d)" client node
  | Grant { client; seq } -> Printf.sprintf "grant(c=%d s=%d)" client seq
  | Released { client; seq } -> Printf.sprintf "released(c=%d s=%d)" client seq
  | Committed { client; seq; global_seq } ->
      Printf.sprintf "committed(c=%d s=%d g=%d)" client seq global_seq
  | Rejected { client; seq; reason } ->
      Printf.sprintf "rejected(c=%d s=%d %s)" client seq reason

let bad_tag codec tag =
  Error (Buf.Malformed (Printf.sprintf "%s: unknown message tag %#x" codec tag))

open Buf.Dec

(* Keys 31/32 sit far from the protocol registry's 1..13 block, so a
   client frame hitting a cluster port (or vice versa) is a loud key
   mismatch, not a silent misparse. *)

let request_codec : request Codec.t =
  {
    Codec.name = "service-request";
    key = 31;
    version = 1;
    encode_msg =
      (fun b msg ->
        match msg with
        | Hello { client } ->
            Buf.Enc.byte b 0;
            Buf.Enc.int b client
        | Acquire { client; seq } ->
            Buf.Enc.byte b 1;
            Buf.Enc.int b client;
            Buf.Enc.int b seq
        | Release { client; seq } ->
            Buf.Enc.byte b 2;
            Buf.Enc.int b client;
            Buf.Enc.int b seq
        | Publish { client; seq; payload } ->
            Buf.Enc.byte b 3;
            Buf.Enc.int b client;
            Buf.Enc.int b seq;
            Buf.Enc.string b payload);
    decode_msg =
      (* Match chains on the hot tags (Acquire/Publish dominate a loaded
         run); [let*] binds would allocate per frame. *)
      (fun d ->
        match byte d with
        | Ok 0 -> (
            match int d with
            | Ok client -> Ok (Hello { client })
            | Error _ as e -> e)
        | Ok 1 -> (
            match int d with
            | Ok client -> (
                match int d with
                | Ok seq -> Ok (Acquire { client; seq })
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok 2 -> (
            match int d with
            | Ok client -> (
                match int d with
                | Ok seq -> Ok (Release { client; seq })
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok 3 -> (
            match int d with
            | Ok client -> (
                match int d with
                | Ok seq -> (
                    match string d with
                    | Ok payload -> Ok (Publish { client; seq; payload })
                    | Error _ as e -> e)
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok t -> bad_tag "service-request" t
        | Error _ as e -> e);
  }

let response_codec : response Codec.t =
  {
    Codec.name = "service-response";
    key = 32;
    version = 1;
    encode_msg =
      (fun b msg ->
        match msg with
        | Welcome { client; node } ->
            Buf.Enc.byte b 0;
            Buf.Enc.int b client;
            Buf.Enc.int b node
        | Grant { client; seq } ->
            Buf.Enc.byte b 1;
            Buf.Enc.int b client;
            Buf.Enc.int b seq
        | Released { client; seq } ->
            Buf.Enc.byte b 2;
            Buf.Enc.int b client;
            Buf.Enc.int b seq
        | Committed { client; seq; global_seq } ->
            Buf.Enc.byte b 3;
            Buf.Enc.int b client;
            Buf.Enc.int b seq;
            Buf.Enc.int b global_seq
        | Rejected { client; seq; reason } ->
            Buf.Enc.byte b 4;
            Buf.Enc.int b client;
            Buf.Enc.int b seq;
            Buf.Enc.string b reason);
    decode_msg =
      (fun d ->
        match byte d with
        | Ok 0 -> (
            match int d with
            | Ok client -> (
                match int d with
                | Ok node -> Ok (Welcome { client; node })
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok 1 -> (
            match int d with
            | Ok client -> (
                match int d with
                | Ok seq -> Ok (Grant { client; seq })
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok 2 -> (
            match int d with
            | Ok client -> (
                match int d with
                | Ok seq -> Ok (Released { client; seq })
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok 3 -> (
            match int d with
            | Ok client -> (
                match int d with
                | Ok seq -> (
                    match int d with
                    | Ok global_seq -> Ok (Committed { client; seq; global_seq })
                    | Error _ as e -> e)
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok 4 -> (
            match int d with
            | Ok client -> (
                match int d with
                | Ok seq -> (
                    match string d with
                    | Ok reason -> Ok (Rejected { client; seq; reason })
                    | Error _ as e -> e)
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok t -> bad_tag "service-response" t
        | Error _ as e -> e);
  }
