(* Not [open Tr_apps]: the app [Mutex] would shadow stdlib [Mutex]. *)
module Movement = Tr_apps.Movement
module Mutex_app = Tr_apps.Mutex
module Total_order = Tr_apps.Total_order
module Cluster = Tr_net_rt.Cluster
module Mailbox = Tr_net_rt.Mailbox
module Readiness = Tr_net_rt.Readiness
module Wakeup = Tr_net_rt.Wakeup
module Frame = Tr_wire.Frame
module Codec = Tr_wire.Codec
module Network = Tr_sim.Network

external fd_int : Unix.file_descr -> int = "%identity"

type app = Mutex | Total_order

let app_name = function Mutex -> "mutex" | Total_order -> "total-order"

type mode_source = Pinned of Movement.directive | Adaptive of Policy.t

type config = {
  cluster : Cluster.config;
  listen : Unix.sockaddr;
  app : app;
  cs_duration : float;
  mode : mode_source;
  report_every_s : float;
  verbose : bool;
}

let default_config ~n ~seed ~listen =
  let cluster =
    { (Cluster.default_config ~n ~seed) with Cluster.load = Cluster.External }
  in
  {
    cluster;
    listen;
    app = Mutex;
    cs_duration = 2.0;
    mode = Pinned Movement.default;
    report_every_s = 1.0;
    verbose = false;
  }

type stats = {
  mutable accepted : int;
  mutable conns_open : int;
  mutable sessions : int;
  mutable requests : int;
  mutable acquires : int;
  mutable releases : int;
  mutable publishes : int;
  mutable grants_sent : int;
  mutable released_sent : int;
  mutable committed_sent : int;
  mutable rejected_sent : int;
  mutable decode_errors : int;
  mutable resync_skips : int;
  mutable overflow_drops : int;
  mutable conn_out_hwm : int;
  mutable fifo_hwm : int;
}

let fresh_stats () =
  {
    accepted = 0;
    conns_open = 0;
    sessions = 0;
    requests = 0;
    acquires = 0;
    releases = 0;
    publishes = 0;
    grants_sent = 0;
    released_sent = 0;
    committed_sent = 0;
    rejected_sent = 0;
    decode_errors = 0;
    resync_skips = 0;
    overflow_drops = 0;
    conn_out_hwm = 0;
    fifo_hwm = 0;
  }

type outcome = {
  report : Cluster.report;
  stats : stats;
  switches : Policy.switch_event list;
}

(* Events cross from the shard domains (where the protocol hooks fire)
   to the single server I/O domain through a lock-free mailbox plus a
   wake pipe — the exact channel the cluster itself uses for load
   injection, pointed the other way. *)
type app_event =
  | Cs_enter of int
  | Cs_exit of int
  | Delivered of { node : int; global_seq : int }

type conn = {
  fd : Unix.file_descr;
  key : int;
  dec : Frame.Decoder.t;
  mutable out : Bytes.t;  (** Unwritten bytes live in [out_pos..out_len). *)
  mutable out_pos : int;
  mutable out_len : int;
  mutable alive : bool;
}

let queued c = c.out_len - c.out_pos

(* A client that stops reading cannot be allowed to buffer the server
   into the ground; past this backlog the connection is cut. Matches the
   transport's own per-peer drop threshold. *)
let out_limit = 4 * 1024 * 1024

let ensure_capacity c extra =
  if c.out_len + extra > Bytes.length c.out then begin
    if c.out_pos > 0 then begin
      let live = queued c in
      Bytes.blit c.out c.out_pos c.out 0 live;
      c.out_pos <- 0;
      c.out_len <- live
    end;
    let need = c.out_len + extra in
    if need > Bytes.length c.out then begin
      let cap = ref (Bytes.length c.out) in
      while !cap < need do
        cap := !cap * 2
      done;
      let grown = Bytes.create !cap in
      Bytes.blit c.out 0 grown 0 c.out_len;
      c.out <- grown
    end
  end

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let run ?on_ready config =
  (match config.cluster.Cluster.load with
  | Cluster.External -> ()
  | _ ->
      invalid_arg
        "Server.run: cluster.load must be External (requests come from \
         clients, not a generator)");
  let n = config.cluster.Cluster.n in
  let st = fresh_stats () in
  let events : app_event Mailbox.t = Mailbox.create () in
  let wake = Wakeup.create () in
  let control_slot : Cluster.control option Atomic.t = Atomic.make None in
  let cluster_done = Atomic.make false in
  let directive =
    match config.mode with
    | Pinned d -> fun () -> d
    | Adaptive p -> Policy.directive p
  in
  (* Spawn the cluster on its own domain; [attach] hands us the control
     handle before any shard starts, so [inject] is safe from the first
     accepted request onward. *)
  let attach c = Atomic.set control_slot (Some c) in
  let spawn_cluster (type m)
      (protocol : (module Tr_sim.Node_intf.PROTOCOL with type msg = m))
      (codec : m Codec.t) =
    Domain.spawn (fun () ->
        let r = Cluster.run ~attach config.cluster protocol codec in
        Atomic.set cluster_done true;
        Wakeup.wake wake;
        r)
  in
  let cluster_domain =
    match config.app with
    | Mutex ->
        let on_event ~self ~now:_ ev =
          Mailbox.push events
            (match ev with `Enter -> Cs_enter self | `Exit -> Cs_exit self);
          Wakeup.wake wake
        in
        let p =
          Mutex_app.make ~cs_duration:config.cs_duration ~directive ~on_event ()
        in
        spawn_cluster
          (module (val p) : Tr_sim.Node_intf.PROTOCOL
            with type msg = Mutex_app.msg)
          App_codecs.mutex
    | Total_order ->
        let on_deliver ~self ~now:_ ~seq (p : Total_order.payload) =
          if p.Total_order.origin = self then begin
            Mailbox.push events (Delivered { node = self; global_seq = seq });
            Wakeup.wake wake
          end
        in
        let p = Total_order.make ~directive ~on_deliver () in
        spawn_cluster
          (module (val p) : Tr_sim.Node_intf.PROTOCOL
            with type msg = Total_order.msg)
          App_codecs.total_order
  in
  let rec await_control () =
    match Atomic.get control_slot with
    | Some c -> c
    | None ->
        if Atomic.get cluster_done then
          failwith "Server.run: cluster exited before attaching control";
        Unix.sleepf 0.001;
        await_control ()
  in
  let control = await_control () in
  (* Client-facing listener. *)
  (match config.listen with
  | Unix.ADDR_UNIX path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Unix.ADDR_INET _ -> ());
  let listen_fd =
    Unix.socket (Unix.domain_of_sockaddr config.listen) Unix.SOCK_STREAM 0
  in
  (match config.listen with
  | Unix.ADDR_INET _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
  | Unix.ADDR_UNIX _ -> ());
  Unix.bind listen_fd config.listen;
  Unix.listen listen_fd 512;
  Unix.set_nonblock listen_fd;
  let bound_addr = Unix.getsockname listen_fd in
  let rd = Readiness.create () in
  Readiness.set rd listen_fd ~read:true ~write:false;
  Readiness.set rd (Wakeup.read_fd wake) ~read:true ~write:false;
  let listen_key = fd_int listen_fd and wake_key = fd_int (Wakeup.read_fd wake) in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 1024 in
  let sessions : (int, conn) Hashtbl.t = Hashtbl.create 4096 in
  let mutex_fifo = Array.init n (fun _ -> Queue.create ()) in
  let pub_fifo = Array.init n (fun _ -> Queue.create ()) in
  let scratch = Codec.scratch () in
  let readbuf = Bytes.create 65536 in
  let node_of client = client mod n in
  let drop_conn c =
    if c.alive then begin
      c.alive <- false;
      Readiness.remove rd c.fd;
      close_quietly c.fd;
      Hashtbl.remove conns c.key;
      st.conns_open <- st.conns_open - 1
    end
  in
  let interest c =
    if c.alive then Readiness.set rd c.fd ~read:true ~write:(queued c > 0)
  in
  let flush_conn c =
    let continue = ref true in
    while !continue && c.alive && queued c > 0 do
      match Unix.write c.fd c.out c.out_pos (queued c) with
      | 0 -> continue := false
      | written ->
          c.out_pos <- c.out_pos + written;
          if queued c = 0 then begin
            c.out_pos <- 0;
            c.out_len <- 0
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) ->
          drop_conn c;
          continue := false
    done;
    interest c
  in
  let append_response c ~node resp =
    let buf =
      Codec.encode_frame scratch Service_wire.response_codec ~src:node
        ~channel:Network.Reliable resp
    in
    let len = Buffer.length buf in
    ensure_capacity c len;
    Buffer.blit buf 0 c.out c.out_len len;
    c.out_len <- c.out_len + len;
    let backlog = queued c in
    if backlog > st.conn_out_hwm then st.conn_out_hwm <- backlog;
    if backlog > out_limit then begin
      st.overflow_drops <- st.overflow_drops + 1;
      drop_conn c
    end
    else interest c
  in
  let send_to client ~node resp =
    match Hashtbl.find_opt sessions client with
    | Some c when c.alive -> append_response c ~node resp
    | Some _ -> Hashtbl.remove sessions client
    | None -> ()
  in
  let note_request () =
    match config.mode with
    | Adaptive p -> Policy.note_request p ~now:(control.Cluster.live_now ())
    | Pinned _ -> ()
  in
  let push_fifo q entry =
    Queue.add entry q;
    let depth = Queue.length q in
    if depth > st.fifo_hwm then st.fifo_hwm <- depth
  in
  let handle_request c (req : Service_wire.request) =
    st.requests <- st.requests + 1;
    let bind client = Hashtbl.replace sessions client c in
    let reject client seq reason =
      st.rejected_sent <- st.rejected_sent + 1;
      append_response c ~node:0 (Service_wire.Rejected { client; seq; reason })
    in
    match req with
    | Service_wire.Hello { client } ->
        if client < 0 then reject client 0 "bad-client"
        else begin
          bind client;
          st.sessions <- Hashtbl.length sessions;
          append_response c ~node:(node_of client)
            (Service_wire.Welcome { client; node = node_of client })
        end
    | Service_wire.Acquire { client; seq } ->
        if client < 0 then reject client seq "bad-client"
        else begin
          bind client;
          st.acquires <- st.acquires + 1;
          let node = node_of client in
          push_fifo mutex_fifo.(node) (client, seq);
          note_request ();
          control.Cluster.inject node
        end
    | Service_wire.Release { client; seq = _ } ->
        (* Advisory: the lease timer is the release authority. *)
        if client >= 0 then st.releases <- st.releases + 1
    | Service_wire.Publish { client; seq; payload = _ } ->
        if client < 0 then reject client seq "bad-client"
        else begin
          bind client;
          st.publishes <- st.publishes + 1;
          let node = node_of client in
          push_fifo pub_fifo.(node) (client, seq);
          note_request ();
          control.Cluster.inject node
        end
  in
  let pump_decoder c =
    let continue = ref true in
    while !continue && c.alive do
      match Frame.Decoder.next_view c.dec with
      | Frame.Decoder.Await_view -> continue := false
      | Frame.Decoder.Skip_view _ -> st.resync_skips <- st.resync_skips + 1
      | Frame.Decoder.View v -> (
          match Codec.decode_view Service_wire.request_codec v with
          | Ok env -> handle_request c env.Codec.msg
          | Error _ -> st.decode_errors <- st.decode_errors + 1)
    done
  in
  let read_conn c =
    let continue = ref true in
    while !continue && c.alive do
      match Unix.read c.fd readbuf 0 (Bytes.length readbuf) with
      | 0 ->
          drop_conn c;
          continue := false
      | len ->
          Frame.Decoder.feed_sub c.dec readbuf ~pos:0 ~len;
          pump_decoder c
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) ->
          drop_conn c;
          continue := false
    done
  in
  let accept_loop () =
    let continue = ref true in
    while !continue do
      match Unix.accept listen_fd with
      | fd, _ ->
          Unix.set_nonblock fd;
          (match config.listen with
          | Unix.ADDR_INET _ -> (
              try Unix.setsockopt fd Unix.TCP_NODELAY true
              with Unix.Unix_error _ -> ())
          | Unix.ADDR_UNIX _ -> ());
          let c =
            {
              fd;
              key = fd_int fd;
              dec = Frame.Decoder.create ();
              out = Bytes.create 4096;
              out_pos = 0;
              out_len = 0;
              alive = true;
            }
          in
          Hashtbl.replace conns c.key c;
          st.accepted <- st.accepted + 1;
          st.conns_open <- st.conns_open + 1;
          Readiness.set rd fd ~read:true ~write:false
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> continue := false
    done
  in
  let process_events () =
    List.iter
      (fun ev ->
        match ev with
        | Cs_enter node -> (
            match Queue.peek_opt mutex_fifo.(node) with
            | Some (client, seq) ->
                st.grants_sent <- st.grants_sent + 1;
                send_to client ~node (Service_wire.Grant { client; seq })
            | None -> ())
        | Cs_exit node -> (
            match Queue.take_opt mutex_fifo.(node) with
            | Some (client, seq) ->
                st.released_sent <- st.released_sent + 1;
                send_to client ~node (Service_wire.Released { client; seq })
            | None -> ())
        | Delivered { node; global_seq } -> (
            match Queue.take_opt pub_fifo.(node) with
            | Some (client, seq) ->
                st.committed_sent <- st.committed_sent + 1;
                send_to client ~node
                  (Service_wire.Committed { client; seq; global_seq })
            | None -> ()))
      (Mailbox.drain events)
  in
  let tick_policy () =
    match config.mode with
    | Adaptive p -> Policy.tick p ~now:(control.Cluster.live_now ())
    | Pinned _ -> ()
  in
  let print_report () =
    if config.verbose then begin
      (* One coherent snapshot: the cluster's shard domains are still
         mutating these counters (and may be tearing down), so reading
         live atomics field by field could pair values from different
         moments. *)
      let ts =
        Tr_net_rt.Transport.snapshot_of_stats control.Cluster.transport_stats
      in
      let mode, per_rev =
        match config.mode with
        | Adaptive p ->
            (Movement.mode_to_string (Policy.mode p), Policy.per_rev p)
        | Pinned d -> (Movement.mode_to_string d.Movement.mode ^ "(pinned)", 0.)
      in
      Printf.printf
        "[service %s] t=%.1fu conns=%d sessions=%d req=%d grants=%d \
         released=%d committed=%d rejected=%d mode=%s per_rev=%.2f \
         fifo_hwm=%d conn_hwm=%dB frames_dropped=%d out_hwm=%dB \
         decode_err=%d resync=%d\n\
         %!"
        (app_name config.app)
        (control.Cluster.live_now ())
        st.conns_open st.sessions st.requests st.grants_sent st.released_sent
        st.committed_sent st.rejected_sent mode per_rev st.fifo_hwm
        st.conn_out_hwm
        ts.Tr_net_rt.Transport.snap_frames_dropped
        ts.Tr_net_rt.Transport.snap_out_hwm_bytes
        st.decode_errors st.resync_skips
    end
  in
  (match on_ready with
  | Some f -> f ~addr:bound_addr ~control
  | None -> ());
  let next_report = ref (Unix.gettimeofday () +. config.report_every_s) in
  let ready = ref [] in
  while not (Atomic.get cluster_done) do
    let timeout_s =
      Float.max 0.005
        (Float.min 0.5 (!next_report -. Unix.gettimeofday ()))
    in
    ready := [];
    ignore
      (Readiness.wait rd ~timeout_s (fun ~fd ~readable ~writable ->
           ready := (fd, readable, writable) :: !ready));
    Wakeup.drain wake;
    List.iter
      (fun (fd, readable, writable) ->
        if fd = wake_key then ()
        else if fd = listen_key then begin
          if readable then accept_loop ()
        end
        else
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some c ->
              if writable then flush_conn c;
              if readable && c.alive then read_conn c)
      (List.rev !ready);
    process_events ();
    let now = Unix.gettimeofday () in
    if now >= !next_report then begin
      next_report := now +. config.report_every_s;
      tick_policy ();
      print_report ()
    end
  done;
  (* The cluster stopped; answer what can still be answered, then shut
     the front door. *)
  process_events ();
  Hashtbl.iter (fun _ c -> flush_conn c) conns;
  Hashtbl.iter
    (fun _ c ->
      if c.alive then begin
        Readiness.remove rd c.fd;
        close_quietly c.fd
      end)
    conns;
  Readiness.remove rd listen_fd;
  close_quietly listen_fd;
  Readiness.remove rd (Wakeup.read_fd wake);
  Readiness.close rd;
  Wakeup.close wake;
  (match config.listen with
  | Unix.ADDR_UNIX path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Unix.ADDR_INET _ -> ());
  let report = Domain.join cluster_domain in
  let switches =
    match config.mode with Adaptive p -> Policy.switches p | Pinned _ -> []
  in
  { report; stats = st; switches }

let stats_json ~(outcome : outcome) ~app ~adaptive =
  let open Tr_net_rt.Live_export in
  let st = outcome.stats in
  obj
    [
      ("kind", json_string "service");
      ("seed", string_of_int outcome.report.Cluster.seed);
      ("app", json_string (app_name app));
      ("adaptive", if adaptive then "true" else "false");
      ("accepted", string_of_int st.accepted);
      ("sessions", string_of_int st.sessions);
      ("requests", string_of_int st.requests);
      ("acquires", string_of_int st.acquires);
      ("releases", string_of_int st.releases);
      ("publishes", string_of_int st.publishes);
      ("grants_sent", string_of_int st.grants_sent);
      ("released_sent", string_of_int st.released_sent);
      ("committed_sent", string_of_int st.committed_sent);
      ("rejected_sent", string_of_int st.rejected_sent);
      ("decode_errors", string_of_int st.decode_errors);
      ("resync_skips", string_of_int st.resync_skips);
      ("overflow_drops", string_of_int st.overflow_drops);
      ("conn_out_hwm", string_of_int st.conn_out_hwm);
      ("fifo_hwm", string_of_int st.fifo_hwm);
      ("switches", string_of_int (List.length outcome.switches));
      ("cluster_grants", string_of_int outcome.report.Cluster.grants);
      ( "frames_dropped",
        string_of_int outcome.report.Cluster.frames_dropped );
      ("out_hwm_bytes", string_of_int outcome.report.Cluster.out_hwm_bytes);
    ]
