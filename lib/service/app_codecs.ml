open Tr_wire
open Tr_apps

(* These live here rather than in [Tr_wire.Codecs] because the wire
   library must not depend on [tr_apps] (the apps already depend on the
   sim types the codecs share). Keys 20/21 sit between the protocol
   registry's 1..13 block and the service client keys 31/32. *)

let bad_tag codec tag =
  Error (Buf.Malformed (Printf.sprintf "%s: unknown message tag %#x" codec tag))

let enc_mode b (m : Movement.mode) =
  Buf.Enc.byte b (match m with Movement.Search -> 0 | Movement.Rotate -> 1)

let dec_mode d =
  match Buf.Dec.byte d with
  | Ok 0 -> Ok Movement.Search
  | Ok 1 -> Ok Movement.Rotate
  | Ok t -> bad_tag "movement-mode" t
  | Error _ as e -> e

open Buf.Dec

let mutex : Mutex.msg Codec.t =
  {
    Codec.name = "mutex";
    key = 20;
    version = 1;
    encode_msg =
      (fun b msg ->
        match msg with
        | Mutex.Token { stamp; mode; idle_hops } ->
            Buf.Enc.byte b 0;
            Buf.Enc.int b stamp;
            enc_mode b mode;
            Buf.Enc.uvarint b idle_hops
        | Mutex.Loan { stamp } ->
            Buf.Enc.byte b 1;
            Buf.Enc.int b stamp
        | Mutex.Return { stamp } ->
            Buf.Enc.byte b 2;
            Buf.Enc.int b stamp
        | Mutex.Gimme { requester; span; stamp } ->
            Buf.Enc.byte b 3;
            Buf.Enc.int b requester;
            Buf.Enc.int b span;
            Buf.Enc.int b stamp);
    decode_msg =
      (fun d ->
        match byte d with
        | Ok 0 -> (
            match int d with
            | Ok stamp -> (
                match dec_mode d with
                | Ok mode -> (
                    match uvarint d with
                    | Ok idle_hops -> Ok (Mutex.Token { stamp; mode; idle_hops })
                    | Error _ as e -> e)
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok 1 -> (
            match int d with
            | Ok stamp -> Ok (Mutex.Loan { stamp })
            | Error _ as e -> e)
        | Ok 2 -> (
            match int d with
            | Ok stamp -> Ok (Mutex.Return { stamp })
            | Error _ as e -> e)
        | Ok 3 -> (
            match int d with
            | Ok requester -> (
                match int d with
                | Ok span -> (
                    match int d with
                    | Ok stamp -> Ok (Mutex.Gimme { requester; span; stamp })
                    | Error _ as e -> e)
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok t -> bad_tag "mutex" t
        | Error _ as e -> e);
  }

let total_order : Total_order.msg Codec.t =
  {
    Codec.name = "total-order";
    key = 21;
    version = 1;
    encode_msg =
      (fun b msg ->
        match msg with
        | Total_order.Token { stamp; next_seq; mode; idle_hops } ->
            Buf.Enc.byte b 0;
            Buf.Enc.int b stamp;
            Buf.Enc.int b next_seq;
            enc_mode b mode;
            Buf.Enc.uvarint b idle_hops
        | Total_order.Loan { stamp; next_seq } ->
            Buf.Enc.byte b 1;
            Buf.Enc.int b stamp;
            Buf.Enc.int b next_seq
        | Total_order.Return { stamp; next_seq } ->
            Buf.Enc.byte b 2;
            Buf.Enc.int b stamp;
            Buf.Enc.int b next_seq
        | Total_order.Gimme { requester; span; stamp } ->
            Buf.Enc.byte b 3;
            Buf.Enc.int b requester;
            Buf.Enc.int b span;
            Buf.Enc.int b stamp
        | Total_order.Bcast { seq; payload = { origin; origin_seq } } ->
            Buf.Enc.byte b 4;
            Buf.Enc.int b seq;
            Buf.Enc.int b origin;
            Buf.Enc.int b origin_seq);
    decode_msg =
      (fun d ->
        match byte d with
        | Ok 0 -> (
            match int d with
            | Ok stamp -> (
                match int d with
                | Ok next_seq -> (
                    match dec_mode d with
                    | Ok mode -> (
                        match uvarint d with
                        | Ok idle_hops ->
                            Ok (Total_order.Token { stamp; next_seq; mode; idle_hops })
                        | Error _ as e -> e)
                    | Error _ as e -> e)
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok 1 -> (
            match int d with
            | Ok stamp -> (
                match int d with
                | Ok next_seq -> Ok (Total_order.Loan { stamp; next_seq })
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok 2 -> (
            match int d with
            | Ok stamp -> (
                match int d with
                | Ok next_seq -> Ok (Total_order.Return { stamp; next_seq })
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok 3 -> (
            match int d with
            | Ok requester -> (
                match int d with
                | Ok span -> (
                    match int d with
                    | Ok stamp -> Ok (Total_order.Gimme { requester; span; stamp })
                    | Error _ as e -> e)
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok 4 -> (
            match int d with
            | Ok seq -> (
                match int d with
                | Ok origin -> (
                    match int d with
                    | Ok origin_seq ->
                        Ok (Total_order.Bcast { seq; payload = { origin; origin_seq } })
                    | Error _ as e -> e)
                | Error _ as e -> e)
            | Error _ as e -> e)
        | Ok t -> bad_tag "total-order" t
        | Error _ as e -> e);
  }
