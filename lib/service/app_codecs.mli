(** Wire codecs for the application message types.

    The mutex and total-order apps run on the live cluster exactly like
    the [lib/proto/] protocols do — through a {!Tr_wire.Codec} paired
    with the protocol module. Their codecs live here (not in
    {!Tr_wire.Codecs}) so [tr_wire] keeps no dependency on [tr_apps].

    Movement modes travel as one byte; [idle_hops] as a uvarint. Same
    fuzz discipline as the registry codecs: decoders never raise, and
    the test suite round-trips and garbage-fuzzes both. *)

val mutex : Tr_apps.Mutex.msg Tr_wire.Codec.t
(** Wire key 20, version 1. *)

val total_order : Tr_apps.Total_order.msg Tr_wire.Codec.t
(** Wire key 21, version 1. *)
