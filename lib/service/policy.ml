(* Not [open Tr_apps]: that would shadow stdlib [Mutex] with the app. *)
module Movement = Tr_apps.Movement

type config = {
  n : int;
  hop_s : float;
  window_s : float;
  hi : float;
  lo : float;
  park_after : int option;
  initial : Movement.mode;
}

let default_config ~n ~hop_s =
  {
    n;
    hop_s;
    window_s = 10. *. float_of_int n *. hop_s;
    hi = 2.0;
    lo = 0.75;
    park_after = Some (2 * n);
    initial = Movement.Search;
  }

type switch_event = {
  at : float;
  from_mode : Movement.mode;
  to_mode : Movement.mode;
  per_rev : float;
}

type t = {
  cfg : config;
  mode : int Atomic.t; (* 0 = Search, 1 = Rotate; the only lock-free field *)
  mu : Mutex.t;
  mutable window_start : float;
  mutable window_count : int;
  mutable last_per_rev : float;
  mutable events : switch_event list; (* newest first *)
}

let mode_of_int = function 0 -> Movement.Search | _ -> Movement.Rotate
let int_of_mode = function Movement.Search -> 0 | Movement.Rotate -> 1

let create cfg =
  if not (cfg.hi > cfg.lo) then
    invalid_arg "Policy.create: need hi > lo for hysteresis";
  {
    cfg;
    mode = Atomic.make (int_of_mode cfg.initial);
    mu = Mutex.create ();
    window_start = 0.;
    window_count = 0;
    last_per_rev = 0.;
    events = [];
  }

let mode t = mode_of_int (Atomic.get t.mode)

let directive t () =
  match mode_of_int (Atomic.get t.mode) with
  | Movement.Rotate -> { Movement.mode = Rotate; park_after = None }
  | Movement.Search -> { Movement.mode = Search; park_after = t.cfg.park_after }

(* Called with t.mu held. *)
let roll_window t ~now =
  let elapsed = now -. t.window_start in
  if elapsed >= t.cfg.window_s then begin
    let rate = float_of_int t.window_count /. elapsed in
    (* Requests per token revolution: one revolution takes n × hop. *)
    let per_rev = rate *. float_of_int t.cfg.n *. t.cfg.hop_s in
    t.last_per_rev <- per_rev;
    t.window_start <- now;
    t.window_count <- 0;
    let cur = mode_of_int (Atomic.get t.mode) in
    let next =
      match cur with
      | Movement.Search when per_rev >= t.cfg.hi -> Movement.Rotate
      | Movement.Rotate when per_rev <= t.cfg.lo -> Movement.Search
      | m -> m
    in
    if next <> cur then begin
      Atomic.set t.mode (int_of_mode next);
      t.events <- { at = now; from_mode = cur; to_mode = next; per_rev } :: t.events
    end
  end

let note_request t ~now =
  Mutex.lock t.mu;
  if t.window_start = 0. then t.window_start <- now;
  t.window_count <- t.window_count + 1;
  roll_window t ~now;
  Mutex.unlock t.mu

let tick t ~now =
  Mutex.lock t.mu;
  if t.window_start = 0. then t.window_start <- now else roll_window t ~now;
  Mutex.unlock t.mu

let per_rev t =
  Mutex.lock t.mu;
  let v = t.last_per_rev in
  Mutex.unlock t.mu;
  v

let switches t =
  Mutex.lock t.mu;
  let ev = List.rev t.events in
  Mutex.unlock t.mu;
  ev
