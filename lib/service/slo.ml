module P2 = Tr_stats.P2

type t = {
  mu : Mutex.t;
  p50 : P2.t;
  p99 : P2.t;
  p999 : P2.t;
  mutable grants : int;
  mutable commits : int;
  mutable rejects : int;
  mutable started : int;
  mutable latency_sum : float;
}

let create () =
  {
    mu = Mutex.create ();
    p50 = P2.create ~p:0.50;
    p99 = P2.create ~p:0.99;
    p999 = P2.create ~p:0.999;
    grants = 0;
    commits = 0;
    rejects = 0;
    started = 0;
    latency_sum = 0.;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let note_started t = locked t (fun () -> t.started <- t.started + 1)
let note_reject t = locked t (fun () -> t.rejects <- t.rejects + 1)

let note_latency t ~kind dt =
  locked t (fun () ->
      (match kind with
      | `Grant -> t.grants <- t.grants + 1
      | `Commit -> t.commits <- t.commits + 1);
      t.latency_sum <- t.latency_sum +. dt;
      P2.add t.p50 dt;
      P2.add t.p99 dt;
      P2.add t.p999 dt)

type snapshot = {
  grants : int;
  commits : int;
  rejects : int;
  started : int;
  samples : int;
  mean : float;
  p50 : float;
  p99 : float;
  p999 : float;
}

let snapshot t =
  locked t (fun () ->
      {
        grants = t.grants;
        commits = t.commits;
        rejects = t.rejects;
        started = t.started;
        samples = P2.count t.p50;
        mean =
          (let c = P2.count t.p50 in
           if c = 0 then Float.nan else t.latency_sum /. float_of_int c);
        p50 = P2.estimate t.p50;
        p99 = P2.estimate t.p99;
        p999 = P2.estimate t.p999;
      })

let pp_ms ppf v =
  if Float.is_nan v then Format.fprintf ppf "-"
  else Format.fprintf ppf "%.2fms" (v *. 1e3)
