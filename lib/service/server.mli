(** The service front-end: clients on one side, the cluster on the other.

    One domain owns all client I/O — a listener plus every accepted
    connection in a single {!Tr_net_rt.Readiness} set, each connection
    carrying a resyncing {!Tr_wire.Frame.Decoder} and a flat outgoing
    buffer flushed on writability (the batched-write idiom the cluster
    transport uses). The cluster itself runs on its own domains via
    {!Tr_net_rt.Cluster.run} in [External] load mode; client requests
    become cluster load through [control.inject], and application
    progress flows back as typed events over a lock-free mailbox + wake
    pipe.

    Session mapping: client [c] lives on node [c mod n]. For the mutex
    app each node keeps a FIFO of outstanding [Acquire]s; the app's
    [`Enter] event grants the head (the protocol serves exactly one
    pending request per critical section) and [`Exit] pops it with a
    [Released] — the lease model. For total order, the j-th [Publish]
    injected at a node is the j-th broadcast that node originates, so
    origin-filtered delivery events pop the publish FIFO in order and
    carry the global sequence number back as [Committed]. *)

type app = Mutex | Total_order

val app_name : app -> string

type mode_source =
  | Pinned of Tr_apps.Movement.directive
      (** Fixed movement mode — the non-adaptive baselines. *)
  | Adaptive of Policy.t
      (** Online ring↔search switching driven by observed load. *)

type config = {
  cluster : Tr_net_rt.Cluster.config;  (** Must use [External] load. *)
  listen : Unix.sockaddr;
  app : app;
  cs_duration : float;  (** Mutex lease length, time units. *)
  mode : mode_source;
  report_every_s : float;
  verbose : bool;  (** Print the periodic SLO/queue report. *)
}

val default_config :
  n:int -> seed:int -> listen:Unix.sockaddr -> config
(** Mutex app, pinned default movement, 1 s reports, quiet. *)

type stats = {
  mutable accepted : int;
  mutable conns_open : int;
  mutable sessions : int;
  mutable requests : int;
  mutable acquires : int;
  mutable releases : int;
  mutable publishes : int;
  mutable grants_sent : int;
  mutable released_sent : int;
  mutable committed_sent : int;
  mutable rejected_sent : int;
  mutable decode_errors : int;
  mutable resync_skips : int;
  mutable overflow_drops : int;
      (** Connections cut for exceeding the 4 MiB outgoing backlog. *)
  mutable conn_out_hwm : int;
      (** Largest backlog any client connection reached, bytes. *)
  mutable fifo_hwm : int;
      (** Deepest any per-node session FIFO got — queueing headroom. *)
}

type outcome = {
  report : Tr_net_rt.Cluster.report;
  stats : stats;
  switches : Policy.switch_event list;
}

val run :
  ?on_ready:
    (addr:Unix.sockaddr -> control:Tr_net_rt.Cluster.control -> unit) ->
  config ->
  outcome
(** Serve until the cluster's stop condition fires (or
    [control.request_stop] is called). Blocks; embedders run it on a
    domain. [on_ready] fires once the listener is bound (with the actual
    address — useful for port 0) and the cluster control is attached;
    keeping [control] lets a test kill nodes or stop the run mid-flight.
    @raise Invalid_argument if [cluster.load] is not [External]. *)

val stats_json : outcome:outcome -> app:app -> adaptive:bool -> string
(** One-line JSON for bench artifacts, via {!Tr_net_rt.Live_export}. *)
