(** The client-facing wire protocol.

    Version-1 framing and varint conventions are exactly {!Tr_wire}'s:
    every message rides in a {!Tr_wire.Frame} whose payload is a
    {!Tr_wire.Codec} envelope, so clients reuse the fuzz-hardened
    resyncing stream decoder unchanged. The envelope [src] field carries
    the client id on requests and the serving node id on responses;
    [channel] is always [Reliable].

    Sequence numbers are client-chosen and echoed verbatim: a client
    correlates responses to in-flight requests by [(client, seq)], which
    is what lets thousands of logical clients multiplex one connection.

    The mutex service is a {e lease}: [Acquire] joins the target node's
    FIFO, [Grant] arrives when the cluster's token enters the critical
    section on the client's behalf, and [Released] arrives when the
    lease expires ([cs_duration] time units later). A client [Release]
    is advisory — it is counted, and acknowledged by the lease-expiry
    [Released], like a lock service that never trusts clients to unlock
    promptly. Total order: [Publish] is sequenced by the token and
    [Committed] reports the global sequence number once the origin node
    delivers it. *)

type request =
  | Hello of { client : int }  (** Open a session; server replies [Welcome]. *)
  | Acquire of { client : int; seq : int }
  | Release of { client : int; seq : int }  (** Advisory early release. *)
  | Publish of { client : int; seq : int; payload : string }

type response =
  | Welcome of { client : int; node : int }
      (** Session open; [node] is the cluster node hosting it. *)
  | Grant of { client : int; seq : int }
  | Released of { client : int; seq : int }
  | Committed of { client : int; seq : int; global_seq : int }
  | Rejected of { client : int; seq : int; reason : string }

val request_label : request -> string
val response_label : response -> string

val request_codec : request Tr_wire.Codec.t
(** Wire key 31, version 1. *)

val response_codec : response Tr_wire.Codec.t
(** Wire key 32, version 1. *)
