(** Streamed SLO accounting for the service layer.

    Wraps three {!Tr_stats.P2} sketches (p50 / p99 / p999) behind a
    mutex so the loadgen's receive path (one domain) and the periodic
    reporter (another) can share one accumulator. Latency is whatever
    the caller measures — the loadgen feeds request-to-grant and
    request-to-commit wall-clock seconds. *)

type t

val create : unit -> t

val note_started : t -> unit
(** A request left the client (denominator for loss accounting). *)

val note_reject : t -> unit

val note_latency : t -> kind:[ `Grant | `Commit ] -> float -> unit
(** Record a completed request's latency in seconds. *)

type snapshot = {
  grants : int;
  commits : int;
  rejects : int;
  started : int;
  samples : int;
  mean : float;  (** Exact streamed mean; NaN with zero samples. *)
  p50 : float;  (** NaN until enough samples ({!Tr_stats.P2} semantics). *)
  p99 : float;
  p999 : float;
}

val snapshot : t -> snapshot

val pp_ms : Format.formatter -> float -> unit
(** Seconds rendered as milliseconds; NaN renders as ["-"]. *)
