(** Load generator: thousands of logical clients over a few sockets.

    Clients are multiplexed client-id → connection (round-robin), which
    is what the wire protocol's [(client, seq)] correlation exists for —
    driving 10k clients does not cost 10k fds. One domain runs all I/O
    in a {!Tr_net_rt.Readiness} set.

    Two driving disciplines, switchable per phase (the FIG10-LIVE ramp
    is three open-loop phases at different rates):

    - {b Closed}: each client keeps exactly one request in flight —
      mutex clients cycle Acquire → Grant → Released (sending an
      advisory Release on Grant), total-order clients cycle
      Publish → Committed — then think and repeat. Throughput adapts to
      what the service sustains.
    - {b Open}: aggregate Poisson arrivals at [rate] requests/s spread
      round-robin across clients, regardless of completions — the
      discipline that actually overloads a service.

    Latency recorded into {!Slo} is request→Grant for the mutex app and
    request→Committed for total order. *)

type workload = Closed of { think_s : float } | Open of { rate : float }
type phase = { duration_s : float; workload : workload }

type config = {
  connect : Unix.sockaddr;
  clients : int;
  conns : int;
  app : Server.app;
  phases : phase list;
  seed : int;
  report_every_s : float;
  drain_s : float;
      (** After the last phase, wait this long for in-flight responses. *)
  verbose : bool;
}

val default_config : connect:Unix.sockaddr -> clients:int -> config
(** Mutex app, one 5 s zero-think closed-loop phase, [min clients 8]
    connections. *)

val validate : config -> unit
(** @raise Invalid_argument on nonsensical combinations: no clients,
    more connections than clients, empty phase list, non-positive phase
    duration or open-loop rate, negative think time. *)

type result = {
  seed : int;  (** The run's RNG seed, echoed for provenance. *)
  sent : int;
  welcomes : int;
  grants : int;
  releaseds : int;
  committeds : int;
  rejects : int;
  decode_errors : int;
  resync_skips : int;
  conn_failures : int;
  outstanding : int;  (** Requests still unanswered when the run ended. *)
  slo : Slo.snapshot;
  phase_slos : (phase * Slo.snapshot) list;
      (** One accumulator per configured phase, in phase order. A
          response is attributed to the phase that {e issued} the
          request — recorded at send time and carried with the in-flight
          entry — so the latency tail of an overloaded ramp step lands
          on that step even when responses arrive after the ramp has
          moved on. [started]/[rejects] are attributed the same way. *)
}

val run : config -> result
(** Connect, drive every phase, drain, disconnect. Blocks.
    @raise Invalid_argument as {!validate}.
    @raise Unix.Unix_error if the initial connects fail. *)

val result_json : result -> string
(** One-line JSON for bench artifacts. *)
